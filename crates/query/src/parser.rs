//! Lexer and recursive-descent parser for the text query language.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := or_expr
//! or_expr := and_expr ( "OR" and_expr )*
//! and_expr:= unary ( "AND" unary )*
//! unary   := "NOT" unary | primary
//! primary := TOKEN | '(' or_expr ')'
//! TOKEN   := '"' any-chars-except-quote '"' | bare-word
//! ```
//!
//! Bare words may contain any non-whitespace characters except `(`, `)` and
//! `"`, and must not equal a keyword. Quoted tokens may contain anything but
//! a double quote (log tokens routinely contain `:`, `-`, `[`, …).

use crate::ast::Expr;
use crate::error::ParseQueryError;
use crate::query::Query;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    And,
    Or,
    Not,
    LParen,
    RParen,
    Word { text: String, offset: usize },
}

fn lex(input: &str) -> Result<Vec<Tok>, ParseQueryError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c == '(' {
            out.push(Tok::LParen);
            i += 1;
        } else if c == ')' {
            out.push(Tok::RParen);
            i += 1;
        } else if c == '"' {
            let start = i;
            i += 1;
            let mut end = None;
            for (j, b) in bytes.iter().enumerate().skip(i) {
                if *b == b'"' {
                    end = Some(j);
                    break;
                }
            }
            let Some(end) = end else {
                return Err(ParseQueryError::UnterminatedQuote { offset: start });
            };
            let text = input[i..end].to_string();
            if text.is_empty() {
                return Err(ParseQueryError::EmptyToken { offset: start });
            }
            out.push(Tok::Word {
                text,
                offset: start,
            });
            i = end + 1;
        } else {
            // Bare word: up to whitespace, paren, or quote.
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_ascii_whitespace() || c == '(' || c == ')' || c == '"' {
                    break;
                }
                i += 1;
            }
            let word = &input[start..i];
            match word.to_ascii_uppercase().as_str() {
                "AND" => out.push(Tok::And),
                "OR" => out.push(Tok::Or),
                "NOT" => out.push(Tok::Not),
                _ => out.push(Tok::Word {
                    text: word.to_string(),
                    offset: start,
                }),
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn or_expr(&mut self) -> Result<Expr, ParseQueryError> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Some(Tok::Or)) {
            self.bump();
            let right = self.and_expr()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseQueryError> {
        let mut left = self.unary()?;
        loop {
            match self.peek() {
                Some(Tok::And) => {
                    self.bump();
                    let right = self.unary()?;
                    left = Expr::and(left, right);
                }
                // Two adjacent tokens without a connective is a common typo;
                // report it instead of silently implying AND.
                Some(Tok::Word { offset, .. }) => {
                    return Err(ParseQueryError::MissingConnective { offset: *offset });
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseQueryError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.bump();
                if self.peek().is_none() {
                    return Err(ParseQueryError::DanglingOperator { op: "NOT".into() });
                }
                Ok(Expr::not(self.unary()?))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseQueryError> {
        match self.bump() {
            Some(Tok::Word { text, .. }) => Ok(Expr::token(text)),
            Some(Tok::LParen) => {
                let inner = self.or_expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(ParseQueryError::UnbalancedParens),
                }
            }
            Some(Tok::And) => Err(ParseQueryError::DanglingOperator { op: "AND".into() }),
            Some(Tok::Or) => Err(ParseQueryError::DanglingOperator { op: "OR".into() }),
            Some(Tok::RParen) => Err(ParseQueryError::UnbalancedParens),
            Some(Tok::Not) => Err(ParseQueryError::DanglingOperator { op: "NOT".into() }),
            None => Err(ParseQueryError::UnexpectedEnd),
        }
    }
}

/// Parses query text into an [`Expr`] without normalizing it.
///
/// Most callers want [`parse`], which also converts to the offloadable
/// union-of-intersections form.
///
/// # Errors
///
/// Returns [`ParseQueryError`] on lexical or syntactic problems; each variant
/// carries the byte offset or operator involved.
pub fn parse_expr(input: &str) -> Result<Expr, ParseQueryError> {
    let toks = lex(input)?;
    if toks.is_empty() {
        return Err(ParseQueryError::Empty);
    }
    let mut p = Parser { toks, pos: 0 };
    let expr = p.or_expr()?;
    if p.pos != p.toks.len() {
        // Leftover tokens: the only way to get here is a stray ')'.
        return Err(ParseQueryError::UnbalancedParens);
    }
    Ok(expr)
}

/// Parses query text into an offloadable [`Query`].
///
/// # Errors
///
/// Returns [`ParseQueryError`] on invalid syntax, or a wrapped
/// [`QueryFormError`](crate::QueryFormError) if normalization produces an
/// invalid form.
///
/// # Example
///
/// ```
/// let q = mithrilog_query::parse(r#""failed" AND NOT "pbs_mom:""#)?;
/// assert!(q.matches_line("job 17 failed on node-3"));
/// assert!(!q.matches_line("pbs_mom: job 17 failed"));
/// # Ok::<(), mithrilog_query::ParseQueryError>(())
/// ```
pub fn parse(input: &str) -> Result<Query, ParseQueryError> {
    Ok(parse_expr(input)?.to_query()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn single_bare_word() {
        let q = parse("failed").unwrap();
        assert_eq!(q.sets().len(), 1);
        assert_eq!(q.sets()[0].terms(), &[Term::positive("failed")]);
    }

    #[test]
    fn quoted_token_preserves_punctuation() {
        let q = parse(r#""pbs_mom:""#).unwrap();
        assert_eq!(q.sets()[0].terms()[0].token(), "pbs_mom:");
    }

    #[test]
    fn and_not_combination() {
        let q = parse(r#""failed" AND NOT "pbs_mom:""#).unwrap();
        let set = &q.sets()[0];
        assert_eq!(set.terms().len(), 2);
        assert!(set.terms().contains(&Term::positive("failed")));
        assert!(set.terms().contains(&Term::negative("pbs_mom:")));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse("a and b or c").unwrap();
        assert_eq!(q.sets().len(), 2);
    }

    #[test]
    fn parentheses_group() {
        let q = parse("A AND (B OR C)").unwrap();
        assert_eq!(q.sets().len(), 2);
        assert!(q.matches(["A", "C"].into_iter()));
        assert!(!q.matches(["B", "C"].into_iter()));
    }

    #[test]
    fn not_over_group_applies_de_morgan() {
        let q = parse("NOT (A OR B) AND C").unwrap();
        assert_eq!(q.sets().len(), 1);
        assert!(q.matches(["C"].into_iter()));
        assert!(!q.matches(["C", "A"].into_iter()));
    }

    #[test]
    fn double_not_is_identity() {
        let q = parse("NOT NOT x").unwrap();
        assert_eq!(q.sets()[0].terms(), &[Term::positive("x")]);
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(parse(""), Err(ParseQueryError::Empty));
        assert_eq!(parse("   "), Err(ParseQueryError::Empty));
    }

    #[test]
    fn unterminated_quote_reports_offset() {
        // Lexing happens before parsing, so the quote error wins even when a
        // connective is also missing.
        assert_eq!(
            parse("abc \"def"),
            Err(ParseQueryError::UnterminatedQuote { offset: 4 })
        );
        assert_eq!(
            parse("\"def"),
            Err(ParseQueryError::UnterminatedQuote { offset: 0 })
        );
    }

    #[test]
    fn empty_quoted_token_errors() {
        assert_eq!(
            parse("\"\""),
            Err(ParseQueryError::EmptyToken { offset: 0 })
        );
    }

    #[test]
    fn unbalanced_parens_error() {
        assert_eq!(parse("(a AND b"), Err(ParseQueryError::UnbalancedParens));
        assert_eq!(parse("a AND b)"), Err(ParseQueryError::UnbalancedParens));
    }

    #[test]
    fn dangling_operators_error() {
        assert_eq!(
            parse("AND b"),
            Err(ParseQueryError::DanglingOperator { op: "AND".into() })
        );
        assert_eq!(parse("a AND"), Err(ParseQueryError::UnexpectedEnd));
        assert_eq!(
            parse("NOT"),
            Err(ParseQueryError::DanglingOperator { op: "NOT".into() })
        );
    }

    #[test]
    fn adjacent_tokens_without_connective_error() {
        match parse("alpha beta") {
            Err(ParseQueryError::MissingConnective { offset }) => assert_eq!(offset, 6),
            other => panic!("expected MissingConnective, got {other:?}"),
        }
    }

    #[test]
    fn mixed_quotes_and_bare_words() {
        let q = parse(r#"RAS AND "KERNEL" AND NOT FATAL OR "machine check""#).unwrap();
        assert_eq!(q.sets().len(), 2);
        assert!(q.matches(["machine check"].into_iter()));
    }

    #[test]
    fn display_of_parsed_query_reparses_identically() {
        let q1 = parse(r#"(A AND NOT B) OR (C AND D)"#).unwrap();
        let q2 = parse(&q1.to_string()).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn operator_precedence_and_binds_tighter() {
        let q = parse("a OR b AND c").unwrap();
        assert_eq!(q.sets().len(), 2);
        assert!(q.matches(["a"].into_iter()));
        assert!(!q.matches(["b"].into_iter()));
        assert!(q.matches(["b", "c"].into_iter()));
    }
}
