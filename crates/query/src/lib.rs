//! Query representation for the MithriLog token filtering engine.
//!
//! The MithriLog accelerator (MICRO '21, §4) evaluates log lines against
//! queries expressed as a *union* (`∪`) of *intersection sets* (`∩`) of
//! tokens, where every token may be negated (`¬`):
//!
//! ```text
//! (¬A ∩ B ∩ C) ∪ (¬D ∩ ¬E ∩ F ∩ G)
//! ```
//!
//! This crate provides:
//!
//! * [`Term`], [`IntersectionSet`] and [`Query`] — the normalized form the
//!   hardware consumes, plus a reference (software) evaluator that serves as
//!   the ground-truth oracle for the accelerator model in `mithrilog-filter`.
//! * A small text query language (see [`parse`]) supporting `AND`, `OR`,
//!   `NOT`, parentheses and quoted tokens, e.g.
//!   `"failed" AND NOT "pbs_mom:"`.
//! * Conversion of arbitrary boolean expressions into the union-of-
//!   intersections form via negation-normal-form + distribution
//!   ([`ast::Expr::to_query`]).
//! * Query batching ([`batch`]) used by the paper's evaluation: random
//!   2-combinations and 8-combinations of template queries joined with `OR`.
//!
//! # Example
//!
//! ```
//! use mithrilog_query::parse;
//!
//! let query = parse(r#""RAS" AND "KERNEL" AND NOT "FATAL""#)?;
//! assert_eq!(query.sets().len(), 1);
//! assert!(query.matches(["RAS", "KERNEL", "INFO"].into_iter()));
//! assert!(!query.matches(["RAS", "KERNEL", "FATAL"].into_iter()));
//! # Ok::<(), mithrilog_query::ParseQueryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod batch;
mod builder;
mod error;
mod parser;
mod query;
mod term;

pub use builder::{QueryBuilder, SetBuilder};
pub use error::{ParseQueryError, QueryFormError};
pub use parser::parse;
pub use query::{IntersectionSet, Query};
pub use term::Term;
