use mithrilog_query::{IntersectionSet, Query, Term};

use crate::config::FtreeConfig;
use crate::freq::TokenFrequencies;
use crate::tree::FrequencyTree;

/// One extracted log template: the frequency-ordered key tokens plus the
/// sibling tokens whose absence identifies the template (§4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    id: usize,
    tokens: Vec<String>,
    negatives: Vec<String>,
    support: u64,
}

impl Template {
    /// Template id (index in the library).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Key tokens, most globally frequent first.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Tokens that must be absent for a line to match this template.
    pub fn negatives(&self) -> &[String] {
        &self.negatives
    }

    /// Number of corpus lines that produced this template.
    pub fn support(&self) -> u64 {
        self.support
    }

    /// Translates the template into a single-intersection-set query.
    pub fn to_query(&self) -> Query {
        Query::try_new(vec![self.to_intersection_set()]).expect("template has at least one token")
    }

    /// The template as one intersection set, for joining multiple templates
    /// into a single offloadable query with unions.
    pub fn to_intersection_set(&self) -> IntersectionSet {
        let mut set = IntersectionSet::of_tokens(self.tokens.iter().cloned());
        for n in &self.negatives {
            set.push(Term::negative(n.clone()));
        }
        set
    }

    /// Reference matcher: does a raw log line belong to this template?
    pub fn matches_line(&self, line: &str) -> bool {
        self.to_query().matches_line(line)
    }
}

/// A library of templates extracted from one corpus.
#[derive(Debug, Clone, Default)]
pub struct TemplateLibrary {
    templates: Vec<Template>,
}

impl TemplateLibrary {
    /// Extracts templates from a corpus with the FT-tree method.
    pub fn extract(text: &[u8], config: &FtreeConfig) -> Self {
        let (tree, freqs) = FrequencyTree::build(text, config);
        Self::from_tree(&tree, &freqs)
    }

    /// Builds the library from an already-constructed tree.
    pub fn from_tree(tree: &FrequencyTree, freqs: &TokenFrequencies) -> Self {
        let mut templates: Vec<Template> = tree
            .paths(freqs)
            .into_iter()
            .enumerate()
            .map(|(id, (tokens, support, negatives))| Template {
                id,
                tokens,
                negatives,
                support,
            })
            .collect();
        // Most common templates first, mirroring the paper's library files.
        templates.sort_by(|a, b| b.support.cmp(&a.support).then(a.tokens.cmp(&b.tokens)));
        for (id, t) in templates.iter_mut().enumerate() {
            t.id = id;
        }
        TemplateLibrary { templates }
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The templates, most common first.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Iterates over the templates.
    pub fn iter(&self) -> std::slice::Iter<'_, Template> {
        self.templates.iter()
    }

    /// One single-template query per template — the paper's "single query"
    /// benchmark set.
    pub fn queries(&self) -> Vec<Query> {
        self.templates.iter().map(Template::to_query).collect()
    }

    /// Joins templates `ids` into one offloadable multi-template query
    /// (union of their intersection sets), as in §4.3's
    /// `(A ∩ B) ∪ (A ∩ C ∩ ¬B ∩ D ∩ E)` example.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or any id is out of range.
    pub fn joined_query(&self, ids: &[usize]) -> Query {
        assert!(!ids.is_empty(), "need at least one template id");
        let sets: Vec<IntersectionSet> = ids
            .iter()
            .map(|&i| self.templates[i].to_intersection_set())
            .collect();
        Query::try_new(sets).expect("template sets are non-empty")
    }

    /// Classifies a line: the id of the *deepest* (most-token) matching
    /// template, if any. Templates can be prefixes of one another (`A∩C∩D`
    /// vs `A∩C∩D∩E`), so the most specific match wins.
    pub fn classify(&self, line: &str) -> Option<usize> {
        let tokens: std::collections::HashSet<&str> = line.split_ascii_whitespace().collect();
        self.templates
            .iter()
            .filter(|t| t.to_query().matches_token_set(&tokens))
            .max_by_key(|t| t.tokens().len())
            .map(Template::id)
    }
}

impl<'a> IntoIterator for &'a TemplateLibrary {
    type Item = &'a Template;
    type IntoIter = std::slice::Iter<'a, Template>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<u8> {
        let mut c = String::new();
        for i in 0..30 {
            c.push_str(&format!(
                "RAS KERNEL INFO instruction cache parity error corrected seq-{i}\n"
            ));
        }
        for i in 0..20 {
            c.push_str(&format!("RAS KERNEL FATAL data storage interrupt at-{i}\n"));
        }
        for i in 0..10 {
            c.push_str(&format!("RAS APP FATAL ciod: Error loading job-{i}\n"));
        }
        c.into_bytes()
    }

    #[test]
    fn extracts_one_template_per_message_shape() {
        let lib = TemplateLibrary::extract(&corpus(), &FtreeConfig::for_tests());
        assert_eq!(lib.len(), 3, "three message shapes → three templates");
        // Most common first.
        assert!(lib.templates()[0].support() >= lib.templates()[1].support());
    }

    #[test]
    fn templates_classify_their_own_lines() {
        let text = corpus();
        let lib = TemplateLibrary::extract(&text, &FtreeConfig::for_tests());
        let mut classified = 0u64;
        for line in std::str::from_utf8(&text).unwrap().lines() {
            if lib.classify(line).is_some() {
                classified += 1;
            }
        }
        assert_eq!(classified, 60, "every line belongs to some template");
    }

    #[test]
    fn template_queries_discriminate_between_templates() {
        let text = corpus();
        let lib = TemplateLibrary::extract(&text, &FtreeConfig::for_tests());
        // Find the template containing "corrected" (INFO shape); its query
        // must reject FATAL lines.
        let info = lib
            .iter()
            .find(|t| t.tokens().iter().any(|x| x == "corrected"))
            .expect("INFO template");
        assert!(
            info.matches_line("RAS KERNEL INFO instruction cache parity error corrected seq-99")
        );
        assert!(!info.matches_line("RAS KERNEL FATAL data storage interrupt at-7"));
    }

    #[test]
    fn joined_query_matches_union_of_templates() {
        let text = corpus();
        let lib = TemplateLibrary::extract(&text, &FtreeConfig::for_tests());
        let q = lib.joined_query(&[0, 1]);
        assert_eq!(q.sets().len(), 2);
        let t0_line = "RAS KERNEL INFO instruction cache parity error corrected seq-1";
        assert_eq!(
            q.matches_line(t0_line),
            lib.templates()[0].matches_line(t0_line) || lib.templates()[1].matches_line(t0_line)
        );
    }

    #[test]
    fn queries_len_matches_library() {
        let lib = TemplateLibrary::extract(&corpus(), &FtreeConfig::for_tests());
        assert_eq!(lib.queries().len(), lib.len());
        for q in lib.queries() {
            assert_eq!(q.sets().len(), 1);
        }
    }

    #[test]
    fn negatives_keep_sibling_templates_apart() {
        // Two shapes sharing a frequent prefix: the rarer, deeper template
        // must not match lines of the more frequent sibling.
        let mut c = String::new();
        for _ in 0..40 {
            c.push_str("svc common-a status ok\n");
        }
        for _ in 0..10 {
            c.push_str("svc common-a detail xyz extra-depth\n");
        }
        let lib = TemplateLibrary::extract(c.as_bytes(), &FtreeConfig::for_tests());
        let deep = lib
            .iter()
            .find(|t| t.tokens().iter().any(|x| x == "extra-depth"))
            .expect("deep template");
        assert!(!deep.matches_line("svc common-a status ok"));
        assert!(deep.matches_line("svc common-a detail xyz extra-depth"));
    }

    #[test]
    fn empty_corpus_gives_empty_library() {
        let lib = TemplateLibrary::extract(b"", &FtreeConfig::for_tests());
        assert!(lib.is_empty());
        assert!(lib.classify("anything").is_none());
    }

    #[test]
    fn into_iterator_yields_all_templates() {
        let lib = TemplateLibrary::extract(&corpus(), &FtreeConfig::for_tests());
        assert_eq!((&lib).into_iter().count(), lib.len());
    }
}
