use std::collections::HashMap;

/// Global token frequency statistics over a corpus (step 1 of FT-tree).
#[derive(Debug, Clone, Default)]
pub struct TokenFrequencies {
    counts: HashMap<String, u64>,
    lines: u64,
}

impl TokenFrequencies {
    /// Counts token frequencies over a whole text corpus (lines split on
    /// `\n`, tokens on ASCII whitespace — the same delimiters as the
    /// hardware tokenizer's default configuration).
    pub fn of_text(text: &[u8]) -> Self {
        let mut tf = TokenFrequencies::default();
        for line in text.split(|b| *b == b'\n') {
            if line.is_empty() {
                continue;
            }
            tf.record_line(line);
        }
        tf
    }

    /// Records one line.
    pub fn record_line(&mut self, line: &[u8]) {
        self.lines += 1;
        if let Ok(s) = std::str::from_utf8(line) {
            for tok in s.split_ascii_whitespace() {
                *self.counts.entry(tok.to_string()).or_insert(0) += 1;
            }
        }
    }

    /// Frequency of one token (0 if unseen).
    pub fn freq(&self, token: &str) -> u64 {
        self.counts.get(token).copied().unwrap_or(0)
    }

    /// Number of distinct tokens observed.
    pub fn distinct_tokens(&self) -> usize {
        self.counts.len()
    }

    /// Number of lines observed.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Returns the line's *distinct* tokens ordered by descending global
    /// frequency (ties broken lexicographically for determinism), keeping
    /// only tokens with at least `min_support` occurrences — step 2 of
    /// FT-tree. Variable values (numbers, ids) fall below the threshold and
    /// vanish here.
    pub fn order_line<'a>(&self, line: &'a str, min_support: u64) -> Vec<&'a str> {
        let mut toks: Vec<&str> = Vec::new();
        for tok in line.split_ascii_whitespace() {
            if self.freq(tok) >= min_support && !toks.contains(&tok) {
                toks.push(tok);
            }
        }
        toks.sort_by(|a, b| self.freq(b).cmp(&self.freq(a)).then(a.cmp(b)));
        toks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_whole_corpus() {
        let tf = TokenFrequencies::of_text(b"a b a\nc a\n\nb\n");
        assert_eq!(tf.freq("a"), 3);
        assert_eq!(tf.freq("b"), 2);
        assert_eq!(tf.freq("c"), 1);
        assert_eq!(tf.freq("zzz"), 0);
        assert_eq!(tf.lines(), 3);
        assert_eq!(tf.distinct_tokens(), 3);
    }

    #[test]
    fn order_line_sorts_by_global_frequency() {
        let tf = TokenFrequencies::of_text(b"a a a b b c\n");
        assert_eq!(tf.order_line("c b a", 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn order_line_applies_support_threshold() {
        let tf = TokenFrequencies::of_text(b"common common common rare\n");
        assert_eq!(tf.order_line("common rare", 2), vec!["common"]);
    }

    #[test]
    fn order_line_deduplicates() {
        let tf = TokenFrequencies::of_text(b"x x y\n");
        assert_eq!(tf.order_line("x y x x", 1), vec!["x", "y"]);
    }

    #[test]
    fn ties_break_lexicographically() {
        let tf = TokenFrequencies::of_text(b"beta alpha\n");
        assert_eq!(tf.order_line("beta alpha", 1), vec!["alpha", "beta"]);
    }
}
