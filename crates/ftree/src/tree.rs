use std::collections::HashMap;

use crate::config::FtreeConfig;
use crate::freq::TokenFrequencies;

/// A node of the frequency tree.
#[derive(Debug, Clone, Default)]
pub(crate) struct Node {
    pub children: HashMap<String, Node>,
    /// Lines whose path passes through this node.
    pub support: u64,
    /// Lines whose path ends exactly here (template shapes can be prefixes
    /// of one another, e.g. `A C D` and `A C D E` in Figure 7).
    pub ends: u64,
}

/// The FT-tree: frequent tokens near the root, one path per message shape
/// (paper Figure 7).
#[derive(Debug, Clone)]
pub struct FrequencyTree {
    root: Node,
    config: FtreeConfig,
    lines: u64,
}

impl FrequencyTree {
    /// Builds and prunes the tree over a corpus in two passes (frequency
    /// counting, then path insertion).
    pub fn build(text: &[u8], config: &FtreeConfig) -> (Self, TokenFrequencies) {
        let freqs = TokenFrequencies::of_text(text);
        let mut tree = FrequencyTree {
            root: Node::default(),
            config: *config,
            lines: 0,
        };
        for line in text.split(|b| *b == b'\n') {
            if line.is_empty() {
                continue;
            }
            if let Ok(s) = std::str::from_utf8(line) {
                let path = freqs.order_line(s, config.min_support);
                tree.insert_path(&path);
            }
        }
        tree.prune();
        (tree, freqs)
    }

    fn insert_path(&mut self, path: &[&str]) {
        self.lines += 1;
        let depth = path.len().min(self.config.max_depth);
        let mut node = &mut self.root;
        node.support += 1;
        for tok in &path[..depth] {
            node = node.children.entry((*tok).to_string()).or_default();
            node.support += 1;
        }
        node.ends += 1;
    }

    /// Pruning pass: cut variable fields (too many children) and noise
    /// (children below support thresholds).
    fn prune(&mut self) {
        let min_leaf = ((self.lines as f64) * self.config.min_leaf_fraction).ceil() as u64;
        let min_support = self.config.min_support.max(min_leaf).max(1);
        let max_children = self.config.max_children;
        fn walk(node: &mut Node, min_support: u64, max_children: usize) {
            // Lines whose continuation is pruned now end at this node.
            let mut reclaimed = 0;
            node.children.retain(|_, c| {
                let keep = c.support >= min_support;
                if !keep {
                    reclaimed += c.support;
                }
                keep
            });
            if node.children.len() > max_children {
                // A position with many distinct values is a variable field.
                reclaimed += node.children.values().map(|c| c.support).sum::<u64>();
                node.children.clear();
            }
            node.ends += reclaimed;
            for child in node.children.values_mut() {
                walk(child, min_support, max_children);
            }
        }
        walk(&mut self.root, min_support, max_children);
    }

    /// Number of lines inserted.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Enumerates template paths: `(tokens, support, negated siblings)` for
    /// every node at which lines end. The negated siblings are computed
    /// with the paper's rule: for each node on the path, siblings whose
    /// global frequency exceeds the path's least frequent token would have
    /// been visited first during traversal, so their absence must be
    /// asserted (§4.3).
    pub(crate) fn paths(&self, freqs: &TokenFrequencies) -> Vec<(Vec<String>, u64, Vec<String>)> {
        let mut out = Vec::new();
        let mut path: Vec<String> = Vec::new();
        fn walk(
            node: &Node,
            path: &mut Vec<String>,
            out: &mut Vec<(Vec<String>, u64, Vec<String>)>,
        ) {
            if node.ends > 0 && !path.is_empty() {
                out.push((path.clone(), node.ends, Vec::new()));
            }
            for (tok, child) in sorted_children(node) {
                path.push(tok.to_string());
                walk(child, path, out);
                path.pop();
            }
        }
        walk(&self.root, &mut path, &mut out);

        // Second pass: compute sibling negations per path.
        for (tokens, _, negatives) in &mut out {
            let min_freq = tokens.iter().map(|t| freqs.freq(t)).min().unwrap_or(0);
            let mut node = &self.root;
            for tok in tokens.iter() {
                for (sib, _) in sorted_children(node) {
                    // A sibling that is itself a later path token (the same
                    // word can branch at several tree levels) must not be
                    // negated — the path asserts its presence.
                    if sib != tok
                        && freqs.freq(sib) > min_freq
                        && !tokens.contains(sib)
                        && !negatives.contains(sib)
                    {
                        negatives.push(sib.clone());
                    }
                }
                node = match node.children.get(tok) {
                    Some(n) => n,
                    None => break,
                };
            }
        }
        out
    }
}

fn sorted_children(node: &Node) -> Vec<(&String, &Node)> {
    let mut kids: Vec<(&String, &Node)> = node.children.iter().collect();
    kids.sort_by(|a, b| b.1.support.cmp(&a.1.support).then(a.0.cmp(b.0)));
    kids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure7_corpus() -> Vec<u8> {
        // Reproduces the paper's Figure 7 shape: global frequency order
        // A > B > C > D > E; template 1 = A B, template 2 = A C D,
        // template 3 = A C D E... adjusted to build exactly the example:
        // templates {A,B}, {A,C,D}, {A,C,D,E}? Figure 7 has template1=(A,B),
        // template2=(A,C,D), template3=(A,C,D,E)-ish. We build lines so the
        // tree is A -> {B, C -> D -> E}.
        let mut corpus = String::new();
        for _ in 0..10 {
            corpus.push_str("A B\n");
        }
        for _ in 0..6 {
            corpus.push_str("A C D\n");
        }
        for _ in 0..4 {
            corpus.push_str("A C D E\n");
        }
        corpus.into_bytes()
    }

    #[test]
    fn builds_frequency_ordered_paths() {
        let (tree, freqs) = FrequencyTree::build(&figure7_corpus(), &FtreeConfig::for_tests());
        assert_eq!(tree.lines(), 20);
        // A is most frequent, so it is the sole child of the root.
        let paths = tree.paths(&freqs);
        for (toks, _, _) in &paths {
            assert_eq!(toks[0], "A", "all paths start at the most frequent token");
        }
    }

    #[test]
    fn leaf_supports_partition_lines() {
        let (tree, freqs) = FrequencyTree::build(&figure7_corpus(), &FtreeConfig::for_tests());
        let paths = tree.paths(&freqs);
        let total: u64 = paths.iter().map(|(_, s, _)| *s).sum();
        assert_eq!(total, 20, "leaf supports must cover every line");
    }

    #[test]
    fn sibling_negation_rule_matches_paper_example() {
        // Paper §4.3: template (A ∩ B) needs no ¬C because C is rarer than
        // B; the deep template through C needs ¬B because B is more
        // frequent than the deep path's least frequent token.
        let (tree, freqs) = FrequencyTree::build(&figure7_corpus(), &FtreeConfig::for_tests());
        let paths = tree.paths(&freqs);
        let ab = paths
            .iter()
            .find(|(t, _, _)| t == &vec!["A".to_string(), "B".to_string()])
            .expect("template A∩B exists");
        assert!(ab.2.is_empty(), "A∩B needs no negations, got {:?}", ab.2);
        let deep = paths
            .iter()
            .find(|(t, _, _)| t.contains(&"E".to_string()))
            .expect("deep template exists");
        assert!(
            deep.2.contains(&"B".to_string()),
            "deep template must negate B, got {:?}",
            deep.2
        );
        assert!(!deep.2.contains(&"C".to_string()));
    }

    #[test]
    fn variable_fields_are_cut() {
        // Token "job" is followed by many distinct ids; ids are below
        // support so they vanish; even if frequent, a wide fanout is cut.
        let mut corpus = String::new();
        for i in 0..50 {
            corpus.push_str(&format!("job started id-{i}\n"));
        }
        let cfg = FtreeConfig {
            min_support: 2,
            max_children: 8,
            max_depth: 10,
            min_leaf_fraction: 0.0,
        };
        let (tree, freqs) = FrequencyTree::build(corpus.as_bytes(), &cfg);
        let paths = tree.paths(&freqs);
        assert_eq!(paths.len(), 1);
        let toks = &paths[0].0;
        assert!(toks.contains(&"job".to_string()));
        assert!(toks.contains(&"started".to_string()));
        assert!(
            !toks.iter().any(|t| t.starts_with("id-")),
            "variable ids must not appear in templates: {toks:?}"
        );
    }

    #[test]
    fn max_depth_caps_template_length() {
        let mut corpus = String::new();
        for _ in 0..5 {
            corpus.push_str("t1 t2 t3 t4 t5 t6 t7 t8 t9 t10 t11 t12 t13 t14 t15\n");
        }
        let cfg = FtreeConfig {
            max_depth: 5,
            ..FtreeConfig::for_tests()
        };
        let (tree, freqs) = FrequencyTree::build(corpus.as_bytes(), &cfg);
        for (toks, _, _) in tree.paths(&freqs) {
            assert!(toks.len() <= 5);
        }
    }
}
