//! Prefix-tree template extraction — the paper's §4.3 extension: "the
//! engine can also trivially support prefix tree-based templates where
//! tokens appearing earlier in a line appear closer to the root".
//!
//! Unlike the frequency tree, paths follow token *position*: the root's
//! children are first-line tokens, their children second tokens, and so on
//! (the family of Drain/Spell-style parsers). A node with too many children
//! marks a variable column and is wildcarded.

use std::collections::HashMap;

use mithrilog_query::Query;

use crate::config::FtreeConfig;

/// A positional template: per column, either a fixed token or a wildcard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixTemplate {
    columns: Vec<Option<String>>,
    support: u64,
}

impl PrefixTemplate {
    /// The per-column pattern; `None` is a wildcard (variable column).
    pub fn columns(&self) -> &[Option<String>] {
        &self.columns
    }

    /// Lines that produced this template.
    pub fn support(&self) -> u64 {
        self.support
    }

    /// Reference matcher with positional semantics.
    pub fn matches_line(&self, line: &str) -> bool {
        let toks: Vec<&str> = line.split_ascii_whitespace().collect();
        if toks.len() < self.columns.len() {
            return false;
        }
        self.columns
            .iter()
            .zip(&toks)
            .all(|(col, tok)| col.as_deref().is_none_or(|c| c == *tok))
    }

    /// Translates to a token-presence query (dropping positional
    /// constraints). The full positional check needs the filter's
    /// column-field extension; this projection is the offload the paper's
    /// base prototype supports, with exact positions re-checked in
    /// software.
    pub fn to_query(&self) -> Option<Query> {
        let toks: Vec<String> = self.columns.iter().flatten().cloned().collect();
        if toks.is_empty() {
            None
        } else {
            Some(Query::all_of(toks))
        }
    }
}

#[derive(Debug, Default)]
struct PNode {
    children: HashMap<String, PNode>,
    wildcard: Option<Box<PNode>>,
    support: u64,
    ends: u64,
}

/// Prefix-tree template extractor.
#[derive(Debug)]
pub struct PrefixTree {
    root: PNode,
    config: FtreeConfig,
}

impl PrefixTree {
    /// Builds the tree over a corpus.
    pub fn build(text: &[u8], config: &FtreeConfig) -> Self {
        let mut tree = PrefixTree {
            root: PNode::default(),
            config: *config,
        };
        for line in text.split(|b| *b == b'\n') {
            if line.is_empty() {
                continue;
            }
            if let Ok(s) = std::str::from_utf8(line) {
                tree.insert(s);
            }
        }
        tree.collapse_variable_columns();
        tree
    }

    fn insert(&mut self, line: &str) {
        let toks: Vec<&str> = line
            .split_ascii_whitespace()
            .take(self.config.max_depth)
            .collect();
        let mut node = &mut self.root;
        node.support += 1;
        for tok in toks {
            node = node.children.entry(tok.to_string()).or_default();
            node.support += 1;
        }
        node.ends += 1;
    }

    /// Merges over-wide fanouts into wildcard children.
    fn collapse_variable_columns(&mut self) {
        let max_children = self.config.max_children;
        fn walk(node: &mut PNode, max_children: usize) {
            if node.children.len() > max_children {
                // Merge all children into a single wildcard child.
                let mut merged = PNode::default();
                for (_, c) in node.children.drain() {
                    merged.support += c.support;
                    merged.ends += c.ends;
                    for (t, gc) in c.children {
                        let slot = merged.children.entry(t).or_default();
                        merge_into(slot, gc);
                    }
                    if let Some(w) = c.wildcard {
                        match &mut merged.wildcard {
                            Some(mw) => merge_into(mw, *w),
                            None => merged.wildcard = Some(w),
                        }
                    }
                }
                node.wildcard = Some(Box::new(merged));
            }
            for c in node.children.values_mut() {
                walk(c, max_children);
            }
            if let Some(w) = &mut node.wildcard {
                walk(w, max_children);
            }
        }
        fn merge_into(dst: &mut PNode, src: PNode) {
            dst.support += src.support;
            dst.ends += src.ends;
            for (t, c) in src.children {
                let slot = dst.children.entry(t).or_default();
                merge_into(slot, c);
            }
            if let Some(w) = src.wildcard {
                match &mut dst.wildcard {
                    Some(dw) => merge_into(dw, *w),
                    None => dst.wildcard = Some(w),
                }
            }
        }
        walk(&mut self.root, max_children);
    }

    /// Extracts templates: every node where at least `min_support` lines
    /// ended becomes a template.
    pub fn templates(&self) -> Vec<PrefixTemplate> {
        let min = self.config.min_support.max(1);
        let mut out = Vec::new();
        let mut cols: Vec<Option<String>> = Vec::new();
        fn walk(
            node: &PNode,
            cols: &mut Vec<Option<String>>,
            min: u64,
            out: &mut Vec<PrefixTemplate>,
        ) {
            if node.ends >= min && !cols.is_empty() {
                out.push(PrefixTemplate {
                    columns: cols.clone(),
                    support: node.ends,
                });
            }
            let mut kids: Vec<(&String, &PNode)> = node.children.iter().collect();
            kids.sort_by(|a, b| b.1.support.cmp(&a.1.support).then(a.0.cmp(b.0)));
            for (tok, child) in kids {
                cols.push(Some(tok.clone()));
                walk(child, cols, min, out);
                cols.pop();
            }
            if let Some(w) = &node.wildcard {
                cols.push(None);
                walk(w, cols, min, out);
                cols.pop();
            }
        }
        walk(&self.root, &mut cols, min, &mut out);
        out.sort_by(|a, b| b.support.cmp(&a.support).then(a.columns.cmp(&b.columns)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<u8> {
        let mut c = String::new();
        for i in 0..30 {
            c.push_str(&format!("kernel: oops at addr-{i:04x}\n"));
        }
        for i in 0..20 {
            c.push_str(&format!("sshd: login from host-{i}\n"));
        }
        c.into_bytes()
    }

    #[test]
    fn positional_templates_extracted() {
        let tree = PrefixTree::build(&corpus(), &FtreeConfig::for_tests());
        let templates = tree.templates();
        assert!(!templates.is_empty());
        // Top template has the larger support.
        assert!(templates[0].support() >= templates.last().unwrap().support());
        let kernel = templates
            .iter()
            .find(|t| t.columns().first() == Some(&Some("kernel:".to_string())))
            .expect("kernel template");
        assert!(kernel.matches_line("kernel: oops at addr-ffff"));
        assert!(!kernel.matches_line("sshd: oops at addr-ffff"));
    }

    #[test]
    fn wildcard_column_for_variable_fields() {
        let tree = PrefixTree::build(&corpus(), &FtreeConfig::for_tests());
        let templates = tree.templates();
        let kernel = templates
            .iter()
            .find(|t| t.columns().first() == Some(&Some("kernel:".to_string())))
            .expect("kernel template");
        // The addr-XXXX column must be a wildcard.
        assert!(
            kernel.columns().iter().any(Option::is_none),
            "variable column should be wildcarded: {:?}",
            kernel.columns()
        );
    }

    #[test]
    fn positional_matcher_respects_positions() {
        let t = PrefixTemplate {
            columns: vec![Some("a".into()), None, Some("c".into())],
            support: 1,
        };
        assert!(t.matches_line("a anything c tail"));
        assert!(!t.matches_line("a anything d"));
        assert!(!t.matches_line("x a c"));
        assert!(!t.matches_line("a b"));
    }

    #[test]
    fn to_query_projects_out_positions() {
        let t = PrefixTemplate {
            columns: vec![Some("a".into()), None, Some("c".into())],
            support: 1,
        };
        let q = t.to_query().expect("has fixed tokens");
        assert!(q.matches_line("c before a")); // order lost by projection
        let all_wild = PrefixTemplate {
            columns: vec![None, None],
            support: 1,
        };
        assert!(all_wild.to_query().is_none());
    }

    #[test]
    fn templates_cover_corpus_lines() {
        let text = corpus();
        let tree = PrefixTree::build(&text, &FtreeConfig::for_tests());
        let templates = tree.templates();
        for line in std::str::from_utf8(&text).unwrap().lines() {
            assert!(
                templates.iter().any(|t| t.matches_line(line)),
                "uncovered line {line:?}"
            );
        }
    }
}
