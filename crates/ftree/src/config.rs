/// Parameters of FT-tree extraction.
///
/// Matches the knobs of the original method: a support threshold separating
/// template words from variable values, and a child-count threshold
/// detecting variable fields (a template position filled by many distinct
/// values produces a node with many children).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtreeConfig {
    /// Minimum occurrences for a token to participate in template paths;
    /// rarer tokens are treated as variable values.
    pub min_support: u64,
    /// A node with more children than this is a variable field: its subtree
    /// is cut during pruning.
    pub max_children: usize,
    /// Maximum template length in tokens (caps path depth).
    pub max_depth: usize,
    /// Minimum fraction of corpus lines a leaf must support for its path to
    /// become a template (filters noise templates).
    pub min_leaf_fraction: f64,
}

impl Default for FtreeConfig {
    fn default() -> Self {
        FtreeConfig {
            min_support: 2,
            max_children: 16,
            max_depth: 12,
            min_leaf_fraction: 0.0005,
        }
    }
}

impl FtreeConfig {
    /// A permissive configuration for small test corpora.
    pub fn for_tests() -> Self {
        FtreeConfig {
            min_support: 2,
            max_children: 8,
            max_depth: 10,
            min_leaf_fraction: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_reasonable() {
        let c = FtreeConfig::default();
        assert!(c.min_support >= 1);
        assert!(c.max_children > 1);
        assert!(c.max_depth > 2);
    }
}
