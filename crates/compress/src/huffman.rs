//! Length-limited canonical Huffman coding used by [`Gzf`](crate::Gzf).

use crate::bitio::{BitReader, BitWriter};
use crate::error::DecompressError;

/// Maximum code length supported by the fast decoder table.
pub const MAX_CODE_LEN: u32 = 15;

/// Builds length-limited Huffman code lengths from symbol frequencies.
///
/// Symbols with zero frequency receive length 0 (no code). If the
/// unrestricted Huffman tree exceeds `max_len`, frequencies are repeatedly
/// damped (`f = f/2 + 1`) and the tree rebuilt — a standard, always-
/// terminating length-limiting heuristic whose optimality loss is tiny.
///
/// # Panics
///
/// Panics if `max_len` is 0 or > [`MAX_CODE_LEN`].
pub fn build_code_lengths(freqs: &[u64], max_len: u32) -> Vec<u32> {
    assert!((1..=MAX_CODE_LEN).contains(&max_len));
    let mut working: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = huffman_lengths(&working);
        let deepest = lengths.iter().copied().max().unwrap_or(0);
        if deepest <= max_len {
            return lengths;
        }
        for f in &mut working {
            if *f > 0 {
                *f = *f / 2 + 1;
            }
        }
    }
}

fn huffman_lengths(freqs: &[u64]) -> Vec<u32> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        index: usize, // tie-break for determinism
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(usize),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap via BinaryHeap.
            other
                .weight
                .cmp(&self.weight)
                .then(other.index.cmp(&self.index))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap: std::collections::BinaryHeap<Node> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| Node {
            weight: f,
            index: i,
            kind: NodeKind::Leaf(i),
        })
        .collect();

    let mut lengths = vec![0u32; freqs.len()];
    match heap.len() {
        0 => return lengths,
        1 => {
            // A single-symbol alphabet still needs a 1-bit code.
            if let Some(Node {
                kind: NodeKind::Leaf(i),
                ..
            }) = heap.pop()
            {
                lengths[i] = 1;
            }
            return lengths;
        }
        _ => {}
    }

    let mut next_index = freqs.len();
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        heap.push(Node {
            weight: a.weight + b.weight,
            index: next_index,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
        next_index += 1;
    }
    let root = heap.pop().expect("one root");
    let mut stack = vec![(root, 0u32)];
    while let Some((node, depth)) = stack.pop() {
        match node.kind {
            NodeKind::Leaf(i) => lengths[i] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((*a, depth + 1));
                stack.push((*b, depth + 1));
            }
        }
    }
    lengths
}

/// Canonical Huffman encoder table: per-symbol (code, length) with code bits
/// pre-reversed for the LSB-first bit writer.
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<(u32, u32)>,
}

impl Encoder {
    /// Builds the encoder from code lengths.
    pub fn from_lengths(lengths: &[u32]) -> Self {
        let codes = canonical_codes(lengths)
            .into_iter()
            .zip(lengths)
            .map(|(code, &len)| (reverse_bits(code, len), len))
            .collect();
        Encoder { codes }
    }

    /// Writes symbol `sym` to the bit stream.
    ///
    /// # Panics
    ///
    /// Panics if the symbol has no code (zero frequency at build time).
    #[inline]
    pub fn write(&self, w: &mut BitWriter, sym: usize) {
        let (code, len) = self.codes[sym];
        assert!(len > 0, "symbol {sym} has no code");
        w.write_bits(u64::from(code), len);
    }

    /// Whether `sym` has an assigned code.
    pub fn has_code(&self, sym: usize) -> bool {
        self.codes.get(sym).is_some_and(|&(_, len)| len > 0)
    }
}

/// Canonical Huffman decoder: a flat peek table over
/// [`MAX_CODE_LEN`]-bit windows.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `table[bits] = (symbol, length)`; length 0 marks an invalid prefix.
    table: Vec<(u16, u8)>,
}

impl Decoder {
    /// Builds a decoder from the same lengths the encoder used.
    pub fn from_lengths(lengths: &[u32]) -> Self {
        let codes = canonical_codes(lengths);
        let mut table = vec![(0u16, 0u8); 1 << MAX_CODE_LEN];
        for (sym, (&len, code)) in lengths.iter().zip(codes).enumerate() {
            if len == 0 {
                continue;
            }
            let rev = reverse_bits(code, len);
            let stride = 1usize << len;
            let mut v = rev as usize;
            while v < table.len() {
                table[v] = (sym as u16, len as u8);
                v += stride;
            }
        }
        Decoder { table }
    }

    /// Reads one symbol from the bit stream.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError::BadSymbol`] on an invalid prefix and
    /// [`DecompressError::Truncated`] when the stream ends mid-code.
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<usize, DecompressError> {
        let peek = r.peek_bits(MAX_CODE_LEN) as usize;
        let (sym, len) = self.table[peek];
        if len == 0 {
            return Err(DecompressError::BadSymbol { at: r.bit_pos() });
        }
        r.consume(u32::from(len))?;
        Ok(sym as usize)
    }
}

/// Assigns canonical (MSB-first, numerically increasing) codes to lengths.
fn canonical_codes(lengths: &[u32]) -> Vec<u32> {
    let max = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; (max + 1) as usize];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; (max + 2) as usize];
    let mut code = 0u32;
    for bits in 1..=max {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c
            }
        })
        .collect()
}

#[inline]
fn reverse_bits(code: u32, len: u32) -> u32 {
    if len == 0 {
        return 0;
    }
    code.reverse_bits() >> (32 - len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_satisfy_kraft_equality() {
        let freqs = [45u64, 13, 12, 16, 9, 5];
        let lengths = build_code_lengths(&freqs, 15);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft sum {kraft}");
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let freqs = [1000u64, 10, 10, 10];
        let lengths = build_code_lengths(&freqs, 15);
        assert!(lengths[0] < lengths[1]);
    }

    #[test]
    fn zero_frequency_symbols_get_no_code() {
        let freqs = [5u64, 0, 7];
        let lengths = build_code_lengths(&freqs, 15);
        assert_eq!(lengths[1], 0);
        assert!(lengths[0] > 0 && lengths[2] > 0);
    }

    #[test]
    fn single_symbol_alphabet_gets_one_bit() {
        let lengths = build_code_lengths(&[42], 15);
        assert_eq!(lengths, vec![1]);
    }

    #[test]
    fn empty_alphabet_ok() {
        let lengths = build_code_lengths(&[0, 0, 0], 15);
        assert_eq!(lengths, vec![0, 0, 0]);
    }

    #[test]
    fn length_limit_is_enforced() {
        // Fibonacci-like frequencies force deep unrestricted trees.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_code_lengths(&freqs, 12);
        assert!(lengths.iter().all(|&l| l <= 12));
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(
            kraft <= 1.0 + 1e-12,
            "kraft {kraft} violates prefix-freeness"
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let freqs = [50u64, 20, 10, 5, 5, 5, 3, 2];
        let lengths = build_code_lengths(&freqs, 15);
        let enc = Encoder::from_lengths(&lengths);
        let dec = Decoder::from_lengths(&lengths);
        let symbols: Vec<usize> = (0..1000).map(|i| (i * 7 + i / 3) % 8).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.read(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn has_code_reflects_frequencies() {
        let lengths = build_code_lengths(&[5, 0, 7], 15);
        let enc = Encoder::from_lengths(&lengths);
        assert!(enc.has_code(0));
        assert!(!enc.has_code(1));
        assert!(enc.has_code(2));
        assert!(!enc.has_code(99));
    }

    #[test]
    fn decoder_rejects_unused_prefix() {
        // Lengths {1, 2}: codes 0, 10 — prefix 11 is invalid.
        let lengths = [1u32, 2];
        let dec = Decoder::from_lengths(&lengths);
        let bytes = [0b0000_0011u8]; // LSB-first: bits 1,1
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            dec.read(&mut r),
            Err(DecompressError::BadSymbol { .. })
        ));
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let lengths = [3u32, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        for (i, (&li, &ci)) in lengths.iter().zip(&codes).enumerate() {
            for (j, (&lj, &cj)) in lengths.iter().zip(&codes).enumerate() {
                if i == j || li == 0 || lj == 0 || li > lj {
                    continue;
                }
                let prefix = cj >> (lj - li);
                assert!(
                    (prefix != ci),
                    "code {i} ({ci:0li$b}) prefixes code {j} ({cj:0lj$b})",
                    li = li as usize,
                    lj = lj as usize
                );
            }
        }
    }
}
