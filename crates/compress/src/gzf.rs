//! `Gzf` — a DEFLATE-class codec (LZSS over a 32 KB window + canonical
//! Huffman entropy coding) standing in for Gzip in the paper's compression
//! comparison (Table 5).
//!
//! The symbol scheme mirrors DEFLATE (literals 0–255, end-of-block 256,
//! length codes 257–285 and distance codes 0–29 with the standard extra-bit
//! tables) but uses a simpler container: per-block code-length tables are
//! stored as raw nibbles instead of the RLE-of-code-lengths meta-tree.
//! Compression ratios land within a few percent of `gzip -6` on log data,
//! which is all the evaluation needs.

use crate::bitio::{BitReader, BitWriter};
use crate::error::DecompressError;
use crate::huffman::{build_code_lengths, Decoder, Encoder};
use crate::Codec;

const MAX_PREALLOC: usize = 16 << 20;
const MAGIC: &[u8; 4] = b"GZF1";
const HEADER_LEN: usize = 13; // magic(4) ver(1) original_len(8)
const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
/// Block granularity: one Huffman table pair per this much input.
const BLOCK_BYTES: usize = 256 * 1024;
/// Hash-chain search depth; deeper finds better matches, slower.
const CHAIN_DEPTH: usize = 64;

const NUM_LITLEN: usize = 286;
const NUM_DIST: usize = 30;
const EOB: usize = 256;

/// DEFLATE length code table: (base length, extra bits) for codes 257..=285.
const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// DEFLATE distance code table: (base distance, extra bits) for codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

fn length_code(len: usize) -> (usize, u16, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    for (i, &(base, extra)) in LENGTH_TABLE.iter().enumerate().rev() {
        if len >= base as usize {
            return (257 + i, (len - base as usize) as u16, extra);
        }
    }
    unreachable!("length {len} below minimum");
}

fn dist_code(dist: usize) -> (usize, u16, u8) {
    debug_assert!((1..=WINDOW).contains(&dist));
    for (i, &(base, extra)) in DIST_TABLE.iter().enumerate().rev() {
        if dist >= base as usize {
            return (i, (dist - base as usize) as u16, extra);
        }
    }
    unreachable!("distance {dist} below minimum");
}

/// One LZSS token.
enum Tok {
    Lit(u8),
    Match { len: usize, dist: usize },
}

/// The Gzf codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gzf;

impl Gzf {
    /// Creates the codec (stateless).
    pub fn new() -> Self {
        Gzf
    }

    /// LZSS pass over one block, returning the token stream.
    fn lzss(input: &[u8], block_start: usize, block_end: usize) -> Vec<Tok> {
        let mut toks = Vec::new();
        let mut head = vec![usize::MAX; 1 << 15];
        let mut prev = vec![usize::MAX; WINDOW];
        let hash = |p: usize| -> usize {
            let b = &input[p..];
            let v = u32::from_le_bytes([b[0], b[1], b[2], 0]);
            (v.wrapping_mul(0x9E37_79B1) >> 17) as usize & 0x7FFF
        };
        // Seed the chains with the window preceding the block so matches can
        // reach back across block boundaries (decoder output is continuous).
        let seed_start = block_start.saturating_sub(WINDOW);
        let insert = |head: &mut Vec<usize>, prev: &mut Vec<usize>, p: usize| {
            if p + MIN_MATCH <= input.len() {
                let h = hash(p);
                prev[p % WINDOW] = head[h];
                head[h] = p;
            }
        };
        for p in seed_start..block_start {
            insert(&mut head, &mut prev, p);
        }

        let mut pos = block_start;
        while pos < block_end {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if pos + MIN_MATCH <= input.len() {
                let mut cand = head[hash(pos)];
                let limit = MAX_MATCH.min(block_end - pos).min(input.len() - pos);
                let mut depth = 0;
                while cand != usize::MAX && depth < CHAIN_DEPTH {
                    let dist = pos.wrapping_sub(cand);
                    if dist == 0 || dist > WINDOW || cand >= pos {
                        break;
                    }
                    let mut len = 0;
                    while len < limit && input[cand + len] == input[pos + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_dist = dist;
                        if len == limit {
                            break;
                        }
                    }
                    cand = prev[cand % WINDOW];
                    depth += 1;
                }
            }
            if best_len >= MIN_MATCH {
                toks.push(Tok::Match {
                    len: best_len,
                    dist: best_dist,
                });
                for p in pos..pos + best_len {
                    insert(&mut head, &mut prev, p);
                }
                pos += best_len;
            } else {
                toks.push(Tok::Lit(input[pos]));
                insert(&mut head, &mut prev, pos);
                pos += 1;
            }
        }
        toks
    }
}

impl Codec for Gzf {
    fn name(&self) -> &'static str {
        "Gzf"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + input.len() / 3 + 512);
        out.extend_from_slice(MAGIC);
        out.push(1);
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());

        let mut block_start = 0usize;
        loop {
            let block_end = (block_start + BLOCK_BYTES).min(input.len());
            let last = block_end == input.len();
            let toks = Self::lzss(input, block_start, block_end);

            // Frequency pass.
            let mut lit_freq = vec![0u64; NUM_LITLEN];
            let mut dist_freq = vec![0u64; NUM_DIST];
            lit_freq[EOB] = 1;
            for t in &toks {
                match t {
                    Tok::Lit(b) => lit_freq[*b as usize] += 1,
                    Tok::Match { len, dist } => {
                        lit_freq[length_code(*len).0] += 1;
                        dist_freq[dist_code(*dist).0] += 1;
                    }
                }
            }
            let lit_lengths = build_code_lengths(&lit_freq, 15);
            let dist_lengths = build_code_lengths(&dist_freq, 15);
            let lit_enc = Encoder::from_lengths(&lit_lengths);
            let dist_enc = Encoder::from_lengths(&dist_lengths);

            // Block header: last-flag byte, then code lengths as nibbles.
            out.push(u8::from(last));
            let mut nibbles = Vec::with_capacity(NUM_LITLEN + NUM_DIST);
            nibbles.extend(lit_lengths.iter().map(|&l| l as u8));
            nibbles.extend(dist_lengths.iter().map(|&l| l as u8));
            for pair in nibbles.chunks(2) {
                let lo = pair[0];
                let hi = pair.get(1).copied().unwrap_or(0);
                out.push(lo | (hi << 4));
            }

            // Symbol bitstream.
            let mut w = BitWriter::new();
            for t in &toks {
                match t {
                    Tok::Lit(b) => lit_enc.write(&mut w, *b as usize),
                    Tok::Match { len, dist } => {
                        let (lc, lextra, lbits) = length_code(*len);
                        lit_enc.write(&mut w, lc);
                        if lbits > 0 {
                            w.write_bits(u64::from(lextra), u32::from(lbits));
                        }
                        let (dc, dextra, dbits) = dist_code(*dist);
                        dist_enc.write(&mut w, dc);
                        if dbits > 0 {
                            w.write_bits(u64::from(dextra), u32::from(dbits));
                        }
                    }
                }
            }
            lit_enc.write(&mut w, EOB);
            let payload = w.finish();
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);

            if last {
                break;
            }
            block_start = block_end;
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, DecompressError> {
        if input.len() < HEADER_LEN {
            return Err(DecompressError::BadHeader {
                reason: "input shorter than header",
            });
        }
        if &input[..4] != MAGIC {
            return Err(DecompressError::BadHeader {
                reason: "missing GZF1 magic",
            });
        }
        if input[4] != 1 {
            return Err(DecompressError::BadHeader {
                reason: "unsupported version",
            });
        }
        let original_len = u64::from_le_bytes(input[5..13].try_into().expect("8 bytes")) as usize;
        // Never trust a header length for allocation: a corrupt frame could
        // declare terabytes. Cap the pre-allocation; the vector still grows
        // to any legitimate size on demand.
        let mut out = Vec::with_capacity(original_len.min(MAX_PREALLOC));
        let mut pos = HEADER_LEN;
        let nibble_bytes = (NUM_LITLEN + NUM_DIST).div_ceil(2);

        loop {
            if pos + 1 + nibble_bytes + 4 > input.len() {
                return Err(DecompressError::Truncated { at: pos });
            }
            let last = input[pos] != 0;
            pos += 1;
            let mut lengths = Vec::with_capacity(NUM_LITLEN + NUM_DIST);
            for i in 0..nibble_bytes {
                let b = input[pos + i];
                lengths.push(u32::from(b & 0xF));
                lengths.push(u32::from(b >> 4));
            }
            lengths.truncate(NUM_LITLEN + NUM_DIST);
            pos += nibble_bytes;
            let lit_dec = Decoder::from_lengths(&lengths[..NUM_LITLEN]);
            let dist_dec = Decoder::from_lengths(&lengths[NUM_LITLEN..]);

            let payload_len =
                u32::from_le_bytes(input[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            if pos + payload_len > input.len() {
                return Err(DecompressError::Truncated { at: pos });
            }
            let mut r = BitReader::new(&input[pos..pos + payload_len]);
            pos += payload_len;

            loop {
                let sym = lit_dec.read(&mut r)?;
                if sym == EOB {
                    break;
                }
                if sym < 256 {
                    out.push(sym as u8);
                    continue;
                }
                let (base, extra) = LENGTH_TABLE
                    .get(sym - 257)
                    .copied()
                    .ok_or(DecompressError::BadSymbol { at: r.bit_pos() })?;
                let len = base as usize + r.read_bits(u32::from(extra))? as usize;
                let dsym = dist_dec.read(&mut r)?;
                let (dbase, dextra) = DIST_TABLE
                    .get(dsym)
                    .copied()
                    .ok_or(DecompressError::BadSymbol { at: r.bit_pos() })?;
                let dist = dbase as usize + r.read_bits(u32::from(dextra))? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(DecompressError::BadReference { at: out.len() });
                }
                let start = out.len() - dist;
                for j in 0..len {
                    let b = out[start + j];
                    out.push(b);
                }
            }
            if last {
                break;
            }
        }

        if out.len() != original_len {
            return Err(DecompressError::LengthMismatch {
                expected: original_len,
                got: out.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::log_corpus;

    fn roundtrip(input: &[u8]) {
        let codec = Gzf::new();
        let packed = codec.compress(input);
        assert_eq!(
            codec.decompress(&packed).unwrap(),
            input,
            "len {}",
            input.len()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abcabcabc");
    }

    #[test]
    fn log_corpus_achieves_best_ratio_of_all_codecs() {
        // Table 5 ordering: Gzip > LZ4 > {LZRW1, LZAH}.
        let corpus = log_corpus();
        let gzf = Gzf::new().ratio(&corpus);
        let lz4 = crate::Lz4::new().ratio(&corpus);
        let lzrw = crate::Lzrw1::new().ratio(&corpus);
        let lzah = crate::Lzah::default().ratio(&corpus);
        assert!(gzf > lz4, "gzf {gzf:.2} vs lz4 {lz4:.2}");
        assert!(lz4 > lzrw, "lz4 {lz4:.2} vs lzrw {lzrw:.2}");
        assert!(gzf > lzah, "gzf {gzf:.2} vs lzah {lzah:.2}");
        roundtrip(&corpus);
    }

    #[test]
    fn multi_block_inputs_round_trip() {
        // Exceed one BLOCK_BYTES to exercise block chaining and the
        // cross-block window seeding.
        let line = b"Jul 06 03:14:15 node-042 daemon[17]: heartbeat ok rtt=42us\n";
        let corpus: Vec<u8> = line
            .iter()
            .copied()
            .cycle()
            .take(BLOCK_BYTES + BLOCK_BYTES / 2)
            .collect();
        roundtrip(&corpus);
        assert!(Gzf::new().ratio(&corpus) > 20.0);
    }

    #[test]
    fn incompressible_data_round_trips() {
        let mut x: u64 = 31;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_runs_use_max_length_matches() {
        let data = vec![b'q'; 10_000];
        let codec = Gzf::new();
        let packed = codec.compress(&data);
        assert!(packed.len() < 600, "run case: {}", packed.len());
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn corruption_detected() {
        let codec = Gzf::new();
        let packed = codec.compress(&log_corpus());
        assert!(codec.decompress(&packed[..HEADER_LEN]).is_err());
        let mut bad = packed.clone();
        bad[2] ^= 0xFF;
        assert!(codec.decompress(&bad).is_err());
    }

    #[test]
    fn length_code_table_is_consistent() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (code, extra, bits) = length_code(len);
            assert!((257..=285).contains(&code));
            let (base, tbits) = LENGTH_TABLE[code - 257];
            assert_eq!(bits, tbits);
            assert_eq!(base as usize + extra as usize, len);
        }
    }

    #[test]
    fn dist_code_table_is_consistent() {
        for dist in [1usize, 2, 4, 5, 100, 1024, 4097, 30000, WINDOW] {
            let (code, extra, bits) = dist_code(dist);
            assert!(code < 30);
            let (base, tbits) = DIST_TABLE[code];
            assert_eq!(bits, tbits);
            assert_eq!(base as usize + extra as usize, dist);
        }
    }
}
