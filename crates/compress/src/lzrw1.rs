//! LZRW1 (Ross Williams, DCC '91) implemented from the algorithm
//! description: byte-granular LZ77 with a 4 KB window, a 4096-entry hash
//! table over 3-byte sequences, and 16-item control groups.
//!
//! Serves as the software baseline LZAH is derived from (paper Table 5) and
//! as the resource-efficiency reference point for the Helion LZRW FPGA core
//! (Table 4).

use crate::error::DecompressError;
use crate::Codec;

const HEADER_LEN: usize = 13; // magic(4) ver(1) original_len(8)
const MAX_PREALLOC: usize = 16 << 20;
const MAGIC: &[u8; 4] = b"LZRW";
/// Window size: offsets are 12 bits.
const MAX_OFFSET: usize = 4095;
/// Copy lengths are 4 bits encoding 3..=18.
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
const GROUP_ITEMS: usize = 16;

/// The LZRW1 codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lzrw1;

impl Lzrw1 {
    /// Creates the codec (stateless).
    pub fn new() -> Self {
        Lzrw1
    }
}

#[inline]
fn hash3(a: u8, b: u8, c: u8) -> usize {
    let v = u32::from_le_bytes([a, b, c, 0]);
    ((v.wrapping_mul(0x9E37_79B1) >> 20) & 0xFFF) as usize
}

impl Codec for Lzrw1 {
    fn name(&self) -> &'static str {
        "LZRW1"
    }

    #[allow(unused_assignments)] // the flush macro's resets are dead on the final flush only
    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + input.len() / 2);
        out.extend_from_slice(MAGIC);
        out.push(1);
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());

        // Hash table maps a 3-byte hash to the most recent position.
        let mut table = vec![usize::MAX; 4096];
        let mut pos = 0usize;
        let mut control: u16 = 0;
        let mut control_items = 0usize;
        let mut control_pos = out.len();
        out.extend_from_slice(&[0, 0]); // placeholder for first control word
        let mut group: Vec<u8> = Vec::with_capacity(GROUP_ITEMS * 2);

        macro_rules! flush_group {
            () => {
                out[control_pos] = (control & 0xFF) as u8;
                out[control_pos + 1] = (control >> 8) as u8;
                out.extend_from_slice(&group);
                group.clear();
                control = 0;
                control_items = 0;
                if pos < input.len() {
                    control_pos = out.len();
                    out.extend_from_slice(&[0, 0]);
                }
            };
        }

        while pos < input.len() {
            let mut emitted_copy = false;
            if pos + MIN_MATCH <= input.len() {
                let h = hash3(input[pos], input[pos + 1], input[pos + 2]);
                let cand = table[h];
                table[h] = pos;
                if cand != usize::MAX {
                    let offset = pos - cand;
                    if (1..=MAX_OFFSET).contains(&offset) {
                        let max_len = MAX_MATCH.min(input.len() - pos);
                        let mut len = 0;
                        while len < max_len && input[cand + len] == input[pos + len] {
                            len += 1;
                        }
                        if len >= MIN_MATCH {
                            // Copy item: 16 bits = 4-bit (len-3), 12-bit offset.
                            let item = (((len - MIN_MATCH) as u16) << 12) | offset as u16;
                            group.push((item & 0xFF) as u8);
                            group.push((item >> 8) as u8);
                            control |= 1 << control_items;
                            pos += len;
                            emitted_copy = true;
                        }
                    }
                }
            }
            if !emitted_copy {
                group.push(input[pos]);
                pos += 1;
            }
            control_items += 1;
            if control_items == GROUP_ITEMS {
                flush_group!();
            }
        }
        if control_items > 0 || !group.is_empty() {
            flush_group!();
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, DecompressError> {
        if input.len() < HEADER_LEN {
            return Err(DecompressError::BadHeader {
                reason: "input shorter than header",
            });
        }
        if &input[..4] != MAGIC {
            return Err(DecompressError::BadHeader {
                reason: "missing LZRW magic",
            });
        }
        if input[4] != 1 {
            return Err(DecompressError::BadHeader {
                reason: "unsupported version",
            });
        }
        let original_len = u64::from_le_bytes(input[5..13].try_into().expect("8 bytes")) as usize;
        // Never trust a header length for allocation: a corrupt frame could
        // declare terabytes. Cap the pre-allocation; the vector still grows
        // to any legitimate size on demand.
        let mut out = Vec::with_capacity(original_len.min(MAX_PREALLOC));
        let mut pos = HEADER_LEN;
        while out.len() < original_len {
            if pos + 2 > input.len() {
                return Err(DecompressError::Truncated { at: pos });
            }
            let control = u16::from_le_bytes([input[pos], input[pos + 1]]);
            pos += 2;
            for i in 0..GROUP_ITEMS {
                if out.len() >= original_len {
                    break;
                }
                if control & (1 << i) != 0 {
                    if pos + 2 > input.len() {
                        return Err(DecompressError::Truncated { at: pos });
                    }
                    let item = u16::from_le_bytes([input[pos], input[pos + 1]]);
                    pos += 2;
                    let len = ((item >> 12) as usize) + MIN_MATCH;
                    let offset = (item & 0xFFF) as usize;
                    if offset == 0 || offset > out.len() {
                        return Err(DecompressError::BadReference { at: out.len() });
                    }
                    let start = out.len() - offset;
                    for j in 0..len {
                        let b = out[start + j];
                        out.push(b);
                    }
                } else {
                    if pos >= input.len() {
                        return Err(DecompressError::Truncated { at: pos });
                    }
                    out.push(input[pos]);
                    pos += 1;
                }
            }
        }
        if out.len() != original_len {
            return Err(DecompressError::LengthMismatch {
                expected: original_len,
                got: out.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::log_corpus;

    fn roundtrip(input: &[u8]) {
        let codec = Lzrw1::new();
        let packed = codec.compress(input);
        assert_eq!(codec.decompress(&packed).unwrap(), input);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(b"aaaa");
    }

    #[test]
    fn log_corpus_round_trips_and_compresses() {
        let corpus = log_corpus();
        let codec = Lzrw1::new();
        let packed = codec.compress(&corpus);
        assert_eq!(codec.decompress(&packed).unwrap(), corpus);
        let ratio = corpus.len() as f64 / packed.len() as f64;
        assert!(ratio > 2.0, "ratio {ratio:.2}");
    }

    #[test]
    fn overlapping_copies_decode_correctly() {
        // "aaaa..." forces offset-1 copies that overlap their own output.
        let data = vec![b'a'; 1000];
        roundtrip(&data);
        let codec = Lzrw1::new();
        let packed = codec.compress(&data);
        // 1000 bytes at max match length 18 → ~56 copy items ≈ 130 bytes.
        assert!(
            packed.len() < 200,
            "run should compress hard: {}",
            packed.len()
        );
    }

    #[test]
    fn window_limit_respected() {
        // Repetition at a distance beyond 4095 cannot be referenced; the
        // stream must still round trip via literals/nearer matches.
        let mut data = Vec::new();
        data.extend_from_slice(&[b'x'; 10]);
        data.extend(
            (0..5000u32)
                .flat_map(|i| i.to_le_bytes())
                .collect::<Vec<u8>>(),
        );
        data.extend_from_slice(&[b'x'; 10]);
        roundtrip(&data);
    }

    #[test]
    fn incompressible_expansion_is_bounded() {
        let mut x: u64 = 99;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect();
        let codec = Lzrw1::new();
        let packed = codec.compress(&data);
        // Worst case: 2 control bytes per 16 literals + header.
        assert!(packed.len() <= HEADER_LEN + data.len() + data.len() / 8 + 4);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn corrupt_header_rejected() {
        let codec = Lzrw1::new();
        let mut packed = codec.compress(b"hello");
        packed[1] = b'?';
        assert!(codec.decompress(&packed).is_err());
    }

    #[test]
    fn truncation_detected() {
        let codec = Lzrw1::new();
        let packed = codec.compress(&log_corpus());
        assert!(codec.decompress(&packed[..packed.len() / 3]).is_err());
    }

    #[test]
    fn bad_reference_detected() {
        // Handcraft a stream whose first item is a copy (impossible: no
        // history yet).
        let mut stream = Vec::new();
        stream.extend_from_slice(MAGIC);
        stream.push(1);
        stream.extend_from_slice(&10u64.to_le_bytes());
        stream.extend_from_slice(&[0x01, 0x00]); // control: first item is a copy
        stream.extend_from_slice(&[0x01, 0x00]); // copy len=3 offset=1 with empty history
        assert!(matches!(
            Lzrw1::new().decompress(&stream),
            Err(DecompressError::BadReference { .. })
        ));
    }
}
