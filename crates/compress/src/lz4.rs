//! The LZ4 block format, implemented from the published specification:
//! sequences of `[token][literal-length*][literals][offset][match-length*]`
//! with 4-bit length nibbles, 255-byte extension bytes and 2-byte
//! little-endian offsets. Greedy matching over a 64 KB window with a
//! 4-byte hash table, comparable to the reference compressor's fast mode.
//!
//! Used as the "general-purpose fast codec" baseline of paper Tables 4–5.

use crate::error::DecompressError;
use crate::Codec;

const HEADER_LEN: usize = 13; // magic(4) ver(1) original_len(8)
const MAX_PREALLOC: usize = 16 << 20;
const MAGIC: &[u8; 4] = b"LZ4B";
const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 65_535;
/// The spec requires the last 5 bytes to be literals and forbids matches
/// starting within the last 12 bytes.
const END_LITERALS: usize = 5;
const MATCH_GUARD: usize = 12;

/// The LZ4 block codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lz4;

impl Lz4 {
    /// Creates the codec (stateless).
    pub fn new() -> Self {
        Lz4
    }
}

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> 18) as usize & 0x3FFF
}

fn write_length(out: &mut Vec<u8>, mut len: usize) {
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

impl Codec for Lz4 {
    fn name(&self) -> &'static str {
        "LZ4"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + input.len() / 2 + 16);
        out.extend_from_slice(MAGIC);
        out.push(1);
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());

        let mut table = vec![usize::MAX; 1 << 14];
        let mut pos = 0usize;
        let mut literal_start = 0usize;

        let match_limit = input.len().saturating_sub(MATCH_GUARD);
        while pos < match_limit {
            let h = hash4(&input[pos..]);
            let cand = table[h];
            table[h] = pos;
            let found = cand != usize::MAX
                && pos - cand <= MAX_OFFSET
                && input[cand..cand + MIN_MATCH] == input[pos..pos + MIN_MATCH];
            if !found {
                pos += 1;
                continue;
            }
            // Extend the match, but never into the end guard.
            let max_len = input.len() - END_LITERALS - pos;
            let mut len = MIN_MATCH;
            while len < max_len && input[cand + len] == input[pos + len] {
                len += 1;
            }
            // Emit sequence: literals since literal_start, then the match.
            let lit_len = pos - literal_start;
            let lit_nibble = lit_len.min(15) as u8;
            let match_nibble = (len - MIN_MATCH).min(15) as u8;
            out.push((lit_nibble << 4) | match_nibble);
            if lit_len >= 15 {
                write_length(&mut out, lit_len - 15);
            }
            out.extend_from_slice(&input[literal_start..pos]);
            let offset = (pos - cand) as u16;
            out.extend_from_slice(&offset.to_le_bytes());
            if len - MIN_MATCH >= 15 {
                write_length(&mut out, len - MIN_MATCH - 15);
            }
            pos += len;
            literal_start = pos;
        }

        // Final sequence: remaining literals, no match.
        let lit_len = input.len() - literal_start;
        let lit_nibble = lit_len.min(15) as u8;
        out.push(lit_nibble << 4);
        if lit_len >= 15 {
            write_length(&mut out, lit_len - 15);
        }
        out.extend_from_slice(&input[literal_start..]);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, DecompressError> {
        if input.len() < HEADER_LEN {
            return Err(DecompressError::BadHeader {
                reason: "input shorter than header",
            });
        }
        if &input[..4] != MAGIC {
            return Err(DecompressError::BadHeader {
                reason: "missing LZ4B magic",
            });
        }
        if input[4] != 1 {
            return Err(DecompressError::BadHeader {
                reason: "unsupported version",
            });
        }
        let original_len = u64::from_le_bytes(input[5..13].try_into().expect("8 bytes")) as usize;
        // Never trust a header length for allocation: a corrupt frame could
        // declare terabytes. Cap the pre-allocation; the vector still grows
        // to any legitimate size on demand.
        let mut out = Vec::with_capacity(original_len.min(MAX_PREALLOC));
        let mut pos = HEADER_LEN;

        let read_length = |pos: &mut usize, base: usize| -> Result<usize, DecompressError> {
            let mut len = base;
            if base == 15 {
                loop {
                    if *pos >= input.len() {
                        return Err(DecompressError::Truncated { at: *pos });
                    }
                    let b = input[*pos];
                    *pos += 1;
                    len += b as usize;
                    if b != 255 {
                        break;
                    }
                }
            }
            Ok(len)
        };

        loop {
            if pos >= input.len() {
                break;
            }
            let token = input[pos];
            pos += 1;
            let lit_len = read_length(&mut pos, (token >> 4) as usize)?;
            if pos + lit_len > input.len() {
                return Err(DecompressError::Truncated { at: pos });
            }
            out.extend_from_slice(&input[pos..pos + lit_len]);
            pos += lit_len;
            if pos >= input.len() {
                break; // last sequence carries no match
            }
            if pos + 2 > input.len() {
                return Err(DecompressError::Truncated { at: pos });
            }
            let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
            pos += 2;
            let match_len = read_length(&mut pos, (token & 0xF) as usize)? + MIN_MATCH;
            if offset == 0 || offset > out.len() {
                return Err(DecompressError::BadReference { at: out.len() });
            }
            let start = out.len() - offset;
            for j in 0..match_len {
                let b = out[start + j];
                out.push(b);
            }
        }

        if out.len() != original_len {
            return Err(DecompressError::LengthMismatch {
                expected: original_len,
                got: out.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::log_corpus;

    fn roundtrip(input: &[u8]) {
        let codec = Lz4::new();
        let packed = codec.compress(input);
        assert_eq!(codec.decompress(&packed).unwrap(), input);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(b"aaaaaaaaaaaa");
        roundtrip(b"hello hello hello");
    }

    #[test]
    fn log_corpus_beats_lzrw1() {
        // LZ4's longer window and unlimited match length should beat LZRW1
        // on templated logs — the Table 5 ordering.
        let corpus = log_corpus();
        let lz4_ratio = Lz4::new().ratio(&corpus);
        let lzrw_ratio = crate::Lzrw1::new().ratio(&corpus);
        assert!(
            lz4_ratio > lzrw_ratio,
            "LZ4 {lz4_ratio:.2} should beat LZRW1 {lzrw_ratio:.2}"
        );
        roundtrip(&corpus);
    }

    #[test]
    fn long_runs_compress_via_overlapping_matches() {
        let data = vec![b'z'; 100_000];
        let codec = Lz4::new();
        let packed = codec.compress(&data);
        assert!(
            packed.len() < 500,
            "run-length case: {} bytes",
            packed.len()
        );
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn long_literal_runs_use_extension_bytes() {
        let mut x: u64 = 7;
        let data: Vec<u8> = (0..2000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 40) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_matches_use_extension_bytes() {
        let mut data = Vec::new();
        let phrase: Vec<u8> = (0u8..=255).collect();
        for _ in 0..20 {
            data.extend_from_slice(&phrase);
        }
        roundtrip(&data);
        assert!(Lz4::new().ratio(&data) > 5.0);
    }

    #[test]
    fn distant_repeats_beyond_64k_fall_back_to_literals() {
        let mut data = vec![0u8; 0];
        let unique: Vec<u8> = (0..70_000u32).flat_map(|i| i.to_le_bytes()).collect();
        data.extend_from_slice(b"needle-needle-needle");
        data.extend_from_slice(&unique);
        data.extend_from_slice(b"needle-needle-needle");
        roundtrip(&data);
    }

    #[test]
    fn truncation_and_corruption_detected() {
        let codec = Lz4::new();
        let packed = codec.compress(&log_corpus());
        assert!(codec.decompress(&packed[..20]).is_err());
        let mut bad = packed.clone();
        bad[0] = b'!';
        assert!(codec.decompress(&bad).is_err());
    }

    #[test]
    fn bad_offset_rejected() {
        let mut stream = Vec::new();
        stream.extend_from_slice(MAGIC);
        stream.push(1);
        stream.extend_from_slice(&100u64.to_le_bytes());
        stream.push(0x00); // token: 0 literals, match len 4
        stream.extend_from_slice(&[0x00, 0x00]); // offset 0: invalid
        assert!(matches!(
            Lz4::new().decompress(&stream),
            Err(DecompressError::BadReference { .. })
        ));
    }
}
