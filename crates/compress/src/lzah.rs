//! LZAH — "LZ Aligned Header" (paper §5, Figures 8–10).
//!
//! LZAH is LZRW1 restructured for hardware: instead of sliding byte by
//! byte, a fixed *word-size window* (16 bytes in the prototype) moves across
//! the input in word-aligned steps. A hash table of recently seen words is
//! probed each step; a hit emits a 1-bit header plus the table index, a miss
//! emits a 0-bit header plus the literal word and stores it. Two further
//! twists make it effective on logs and trivial in hardware:
//!
//! * **Newline realignment** — when the window contains a newline, the
//!   window is cut after the `\n` (zero-padded for table storage) and the
//!   next window starts at the following character. Patterns that recur at
//!   the same *intra-line* offsets (timestamps, template text) therefore
//!   land on identical window contents line after line.
//! * **Aligned header chunks** — 128 header bits are gathered into one
//!   16-byte word followed by the 128 packed payloads, padded to a word
//!   boundary, so the decoder parses headers without any shifter and
//!   payloads with a simple multi-cycle shifter.
//!
//! The decoder emits exactly one word per pair per cycle, which is why the
//! hardware implementation is deterministic at 3.2 GB/s per pipeline.

use crate::error::DecompressError;
use crate::Codec;

/// Frame header: magic(4) ver(1) word(1) hash_bits(1) flags(1)
/// original_len(8) pair_count(8).
const HEADER_LEN: usize = 24;
const MAGIC: &[u8; 4] = b"LZAH";
const FLAG_NEWLINE_REALIGN: u8 = 1;

/// Configuration of the LZAH codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzahConfig {
    /// Window/word size in bytes; the prototype uses 16 to match the filter
    /// datapath.
    pub word_bytes: usize,
    /// log2 of hash table entries. The paper's "modestly sized 16 KB hash
    /// table" is 1024 × 16-byte entries → 10 bits.
    pub hash_bits: u8,
    /// Enable the newline realignment rule. Disabling it reproduces the
    /// "significant drop in compression efficiency" the paper reclaims
    /// (ablation `ablate_lzah_newline`).
    pub newline_realign: bool,
}

impl Default for LzahConfig {
    fn default() -> Self {
        LzahConfig {
            word_bytes: 16,
            hash_bits: 10,
            newline_realign: true,
        }
    }
}

impl LzahConfig {
    /// Number of hash table entries.
    pub fn table_entries(&self) -> usize {
        1 << self.hash_bits
    }

    /// Header-payload pairs per chunk: one word of header bits.
    pub fn pairs_per_chunk(&self) -> usize {
        8 * self.word_bytes
    }
}

/// The LZAH codec; the format is described at the top of this module's
/// source (`lzah.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lzah {
    config: LzahConfig,
}

/// Reusable decoder workspace for [`Lzah::decompress_into`].
///
/// Holds the decoder hash table, the current window word, and the output
/// buffer. After the first decode sized them, subsequent decodes of
/// same-or-smaller frames reuse the allocations — the steady-state scan
/// loop performs zero heap allocations per page.
#[derive(Debug, Default, Clone)]
pub struct LzahScratch {
    table: Vec<u8>,
    word: Vec<u8>,
    out: Vec<u8>,
}

impl LzahScratch {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        LzahScratch::default()
    }

    /// Consumes the workspace, yielding the most recent decode's output.
    pub fn into_output(self) -> Vec<u8> {
        self.out
    }
}

impl Lzah {
    /// Creates a codec with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `word_bytes` is 0 or `hash_bits` > 16 (indices are encoded
    /// in two bytes).
    pub fn new(config: LzahConfig) -> Self {
        assert!(config.word_bytes > 0, "word size must be positive");
        assert!(config.hash_bits <= 16, "indices are encoded in two bytes");
        Lzah { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LzahConfig {
        &self.config
    }

    /// Decompresses into the *aligned* representation the hardware feeds to
    /// the tokenizer: every window word is emitted at full width, so each
    /// newline is followed by zero padding up to the word boundary ("emit a
    /// zero-padded word to make the tokenizer's work easier", Figure 10).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::decompress`].
    pub fn decompress_aligned(&self, input: &[u8]) -> Result<Vec<u8>, DecompressError> {
        let mut out = Vec::new();
        self.decode(input, |word, _advance| out.extend_from_slice(word))?;
        Ok(out)
    }

    /// Decompresses into `scratch`, reusing its hash table, window word and
    /// output buffer across calls, and returns the decoded bytes as a slice
    /// borrowed from the workspace. After warm-up this performs no heap
    /// allocation — the scan hot path calls it once per page.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::decompress`].
    pub fn decompress_into<'s>(
        &self,
        input: &[u8],
        scratch: &'s mut LzahScratch,
    ) -> Result<&'s [u8], DecompressError> {
        let LzahScratch { table, word, out } = scratch;
        out.clear();
        decode_with(input, table, word, |word, advance| {
            out.extend_from_slice(&word[..advance]);
        })?;
        Ok(out.as_slice())
    }

    /// Length in bytes of the LZAH frame at the start of `input`, ignoring
    /// any trailing padding (e.g. the zero fill of a storage page). Walks
    /// the chunk structure alone — header, per-chunk header bits, payload
    /// sizes and reference bounds — without materializing the decoder hash
    /// table or any output.
    ///
    /// # Errors
    ///
    /// Rejects malformed headers, truncated frames and out-of-range match
    /// references like [`Codec::decompress`]. Content-level validation (the
    /// declared `original_len` matching the decoded stream) requires
    /// decoding the words themselves and is left to `decompress`.
    pub fn frame_bytes(&self, input: &[u8]) -> Result<usize, DecompressError> {
        let hdr = FrameHeader::parse(input)?;
        let entries = 1usize << hdr.hash_bits;
        let pairs_per_chunk = 8 * hdr.w;
        let mut pos = HEADER_LEN;
        let mut pairs_done = 0usize;

        while pairs_done < hdr.pair_count {
            if pos + hdr.w > input.len() {
                return Err(DecompressError::Truncated { at: pos });
            }
            let header = &input[pos..pos + hdr.w];
            pos += hdr.w;
            let chunk_pairs = pairs_per_chunk.min(hdr.pair_count - pairs_done);
            let payload_start = pos;
            for i in 0..chunk_pairs {
                let is_match = header[i / 8] & (1 << (i % 8)) != 0;
                if is_match {
                    if pos + 2 > input.len() {
                        return Err(DecompressError::Truncated { at: pos });
                    }
                    let idx = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                    if idx >= entries {
                        return Err(DecompressError::BadReference { at: pos });
                    }
                    pos += 2;
                } else {
                    if pos + hdr.w > input.len() {
                        return Err(DecompressError::Truncated { at: pos });
                    }
                    pos += hdr.w;
                }
            }
            let payload_len = pos - payload_start;
            let padded = payload_len.div_ceil(hdr.w) * hdr.w;
            pos = payload_start + padded;
            pairs_done += chunk_pairs;
        }
        Ok(pos)
    }

    /// Returns `(emitted_bytes, consumed_frame_bytes)` using one-shot local
    /// buffers. Cold paths only; the hot path is [`Lzah::decompress_into`].
    fn decode(
        &self,
        input: &[u8],
        emit: impl FnMut(&[u8], usize),
    ) -> Result<(usize, usize), DecompressError> {
        let mut table = Vec::new();
        let mut word = Vec::new();
        decode_with(input, &mut table, &mut word, emit)
    }
}

/// The parsed 24-byte LZAH frame header.
struct FrameHeader {
    w: usize,
    hash_bits: u8,
    realign: bool,
    original_len: usize,
    pair_count: usize,
}

impl FrameHeader {
    fn parse(input: &[u8]) -> Result<FrameHeader, DecompressError> {
        if input.len() < HEADER_LEN {
            return Err(DecompressError::BadHeader {
                reason: "input shorter than header",
            });
        }
        if &input[..4] != MAGIC {
            return Err(DecompressError::BadHeader {
                reason: "missing LZAH magic",
            });
        }
        if input[4] != 1 {
            return Err(DecompressError::BadHeader {
                reason: "unsupported version",
            });
        }
        let w = input[5] as usize;
        let hash_bits = input[6];
        if w == 0 || hash_bits > 16 {
            return Err(DecompressError::BadHeader {
                reason: "invalid word size or hash bits",
            });
        }
        Ok(FrameHeader {
            w,
            hash_bits,
            realign: input[7] & FLAG_NEWLINE_REALIGN != 0,
            original_len: u64::from_le_bytes(input[8..16].try_into().expect("8 bytes")) as usize,
            pair_count: u64::from_le_bytes(input[16..24].try_into().expect("8 bytes")) as usize,
        })
    }
}

/// The full decoder, writing through caller-owned buffers so a reused
/// workspace ([`LzahScratch`]) decodes without allocating. Returns
/// `(emitted_bytes, consumed_frame_bytes)`.
fn decode_with(
    input: &[u8],
    table: &mut Vec<u8>,
    word: &mut Vec<u8>,
    mut emit: impl FnMut(&[u8], usize),
) -> Result<(usize, usize), DecompressError> {
    let hdr = FrameHeader::parse(input)?;
    let (w, hash_bits) = (hdr.w, hdr.hash_bits);
    let (realign, original_len, pair_count) = (hdr.realign, hdr.original_len, hdr.pair_count);

    let entries = 1usize << hash_bits;
    // The decoder table must start zeroed to mirror the encoder's; clearing
    // then re-extending zero-fills without reallocating once capacity is
    // established.
    table.clear();
    table.resize(entries * w, 0);
    word.clear();
    word.resize(w, 0);
    let pairs_per_chunk = 8 * w;
    let mut pos = HEADER_LEN;
    let mut emitted = 0usize;
    let mut pairs_done = 0usize;

    while pairs_done < pair_count {
        // One header word, then the chunk's packed payloads.
        if pos + w > input.len() {
            return Err(DecompressError::Truncated { at: pos });
        }
        let header = &input[pos..pos + w];
        pos += w;
        let chunk_pairs = pairs_per_chunk.min(pair_count - pairs_done);
        let payload_start = pos;
        for i in 0..chunk_pairs {
            let is_match = header[i / 8] & (1 << (i % 8)) != 0;
            if is_match {
                if pos + 2 > input.len() {
                    return Err(DecompressError::Truncated { at: pos });
                }
                let idx = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                pos += 2;
                if idx >= entries {
                    return Err(DecompressError::BadReference { at: emitted });
                }
                word.copy_from_slice(&table[idx * w..(idx + 1) * w]);
            } else {
                if pos + w > input.len() {
                    return Err(DecompressError::Truncated { at: pos });
                }
                word.copy_from_slice(&input[pos..pos + w]);
                pos += w;
                let idx = hash_word(word, hash_bits);
                table[idx * w..(idx + 1) * w].copy_from_slice(word);
            }
            let remaining = original_len.saturating_sub(emitted);
            let advance = word_advance(word, w, remaining, realign);
            emit(word, advance);
            emitted += advance;
        }
        // Chunks are padded to a word boundary (Figure 9).
        let payload_len = pos - payload_start;
        let padded = payload_len.div_ceil(w) * w;
        pos = payload_start + padded;
        pairs_done += chunk_pairs;
    }

    if emitted != original_len {
        return Err(DecompressError::LengthMismatch {
            expected: original_len,
            got: emitted,
        });
    }
    Ok((emitted, pos))
}

/// Useful length of a decoded window word: cut after the first newline when
/// realignment is on (mirroring the encoder), clamped to the bytes
/// remaining.
fn word_advance(word: &[u8], w: usize, remaining: usize, realign: bool) -> usize {
    let cut = if realign {
        match word.iter().position(|&b| b == b'\n') {
            Some(k) => k + 1,
            None => w,
        }
    } else {
        w
    };
    cut.min(remaining)
}

#[inline]
fn hash_word(word: &[u8], hash_bits: u8) -> usize {
    // FNV-1a over the (padded) word, folded to the table width. The encoder
    // and decoder must agree bit for bit; both call this function.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in word {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 29;
    (h & ((1 << hash_bits) - 1)) as usize
}

/// Streaming LZAH encoder with checkpoint/rollback, used for packing pages
/// (each storage page must decompress independently, so the page builder
/// needs to know exactly when adding one more line would overflow the page).
#[derive(Debug, Clone)]
pub(crate) struct LzahStreamEncoder {
    config: LzahConfig,
    table: Vec<u8>,
    /// Serialized chunks so far (complete chunks only).
    done: Vec<u8>,
    /// Header bits of the current partial chunk.
    header: Vec<u8>,
    /// Packed payloads of the current partial chunk.
    payload: Vec<u8>,
    pairs_in_chunk: usize,
    total_pairs: usize,
    original_len: usize,
}

/// A rollback checkpoint: scalar state plus an undo log of table writes.
#[derive(Debug)]
pub(crate) struct Checkpoint {
    done_len: usize,
    header: Vec<u8>,
    /// Full payload contents: a chunk flush during the checkpointed span
    /// clears `payload`, so a length alone cannot restore it.
    payload: Vec<u8>,
    pairs_in_chunk: usize,
    total_pairs: usize,
    original_len: usize,
    undo: Vec<(usize, Vec<u8>)>,
}

impl LzahStreamEncoder {
    pub(crate) fn new(config: LzahConfig) -> Self {
        LzahStreamEncoder {
            table: vec![0u8; config.table_entries() * config.word_bytes],
            done: Vec::new(),
            header: Vec::new(),
            payload: Vec::new(),
            pairs_in_chunk: 0,
            total_pairs: 0,
            original_len: 0,
            config,
        }
    }

    /// Exact size of the frame if finished now.
    pub(crate) fn frame_len(&self) -> usize {
        let w = self.config.word_bytes;
        let mut len = HEADER_LEN + self.done.len();
        if self.pairs_in_chunk > 0 {
            len += w + self.payload.len().div_ceil(w) * w;
        }
        len
    }

    pub(crate) fn original_len(&self) -> usize {
        self.original_len
    }

    pub(crate) fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            done_len: self.done.len(),
            header: self.header.clone(),
            payload: self.payload.clone(),
            pairs_in_chunk: self.pairs_in_chunk,
            total_pairs: self.total_pairs,
            original_len: self.original_len,
            undo: Vec::new(),
        }
    }

    pub(crate) fn rollback(&mut self, cp: Checkpoint) {
        self.done.truncate(cp.done_len);
        self.header = cp.header;
        self.payload = cp.payload;
        self.pairs_in_chunk = cp.pairs_in_chunk;
        self.total_pairs = cp.total_pairs;
        self.original_len = cp.original_len;
        // Undo table writes in reverse order.
        for (idx, old) in cp.undo.into_iter().rev() {
            let w = self.config.word_bytes;
            self.table[idx * w..(idx + 1) * w].copy_from_slice(&old);
        }
    }

    fn push_pair(&mut self, is_match: bool, payload: &[u8]) {
        let w = self.config.word_bytes;
        if self.pairs_in_chunk == 0 {
            self.header = vec![0u8; w];
        }
        if is_match {
            let i = self.pairs_in_chunk;
            self.header[i / 8] |= 1 << (i % 8);
        }
        self.payload.extend_from_slice(payload);
        self.pairs_in_chunk += 1;
        self.total_pairs += 1;
        if self.pairs_in_chunk == self.config.pairs_per_chunk() {
            self.flush_chunk();
        }
    }

    fn flush_chunk(&mut self) {
        if self.pairs_in_chunk == 0 {
            return;
        }
        let w = self.config.word_bytes;
        self.done.extend_from_slice(&self.header);
        self.done.extend_from_slice(&self.payload);
        let pad = self.payload.len().div_ceil(w) * w - self.payload.len();
        self.done.extend(std::iter::repeat_n(0u8, pad));
        self.header.clear();
        self.payload.clear();
        self.pairs_in_chunk = 0;
    }

    /// Encodes a byte span (typically one line, *including* its newline),
    /// recording table overwrites into `undo` if provided.
    pub(crate) fn push_bytes(&mut self, bytes: &[u8], undo: Option<&mut Checkpoint>) {
        let w = self.config.word_bytes;
        let mut undo = undo;
        let mut pos = 0;
        let mut window = vec![0u8; w];
        while pos < bytes.len() {
            let avail = (bytes.len() - pos).min(w);
            window.fill(0);
            window[..avail].copy_from_slice(&bytes[pos..pos + avail]);
            let advance = if self.config.newline_realign {
                match window[..avail].iter().position(|&b| b == b'\n') {
                    Some(k) => {
                        // Zero-pad after the newline so next-line bytes are
                        // excluded from the stored word.
                        for b in &mut window[k + 1..] {
                            *b = 0;
                        }
                        k + 1
                    }
                    None => avail,
                }
            } else {
                avail
            };
            let idx = hash_word(&window, self.config.hash_bits);
            let slot = &self.table[idx * w..(idx + 1) * w];
            if slot == window.as_slice() {
                self.push_pair(true, &(idx as u16).to_le_bytes());
            } else {
                if let Some(cp) = undo.as_deref_mut() {
                    cp.undo.push((idx, slot.to_vec()));
                }
                self.table[idx * w..(idx + 1) * w].copy_from_slice(&window);
                let lit = window.clone();
                self.push_pair(false, &lit);
            }
            pos += advance;
            self.original_len += advance;
        }
    }

    /// Finishes the frame and returns the compressed bytes.
    pub(crate) fn finish(mut self) -> Vec<u8> {
        self.flush_chunk();
        let mut out = Vec::with_capacity(HEADER_LEN + self.done.len());
        out.extend_from_slice(MAGIC);
        out.push(1);
        out.push(self.config.word_bytes as u8);
        out.push(self.config.hash_bits);
        out.push(if self.config.newline_realign {
            FLAG_NEWLINE_REALIGN
        } else {
            0
        });
        out.extend_from_slice(&(self.original_len as u64).to_le_bytes());
        out.extend_from_slice(&(self.total_pairs as u64).to_le_bytes());
        out.extend_from_slice(&self.done);
        out
    }
}

impl Codec for Lzah {
    fn name(&self) -> &'static str {
        "LZAH"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut enc = LzahStreamEncoder::new(self.config);
        enc.push_bytes(input, None);
        enc.finish()
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, DecompressError> {
        let mut scratch = LzahScratch::new();
        self.decompress_into(input, &mut scratch)?;
        Ok(scratch.into_output())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::log_corpus;

    fn roundtrip(input: &[u8]) {
        let codec = Lzah::default();
        let packed = codec.compress(input);
        let unpacked = codec.decompress(&packed).expect("decompress");
        assert_eq!(
            unpacked,
            input,
            "round trip failed for {} bytes",
            input.len()
        );
    }

    #[test]
    fn empty_input_round_trips() {
        roundtrip(b"");
    }

    #[test]
    fn codec_is_shareable_across_scan_workers() {
        // Each parallel-scan worker builds a thread-local codec from the
        // `Copy` config; the codec itself holds no interior state, so it is
        // freely sendable and shareable.
        fn assert_worker_safe<T: Send + Sync + Clone>() {}
        assert_worker_safe::<Lzah>();
        assert_worker_safe::<LzahConfig>();
    }

    #[test]
    fn short_inputs_round_trip() {
        roundtrip(b"a");
        roundtrip(b"\n");
        roundtrip(b"hello world\n");
        roundtrip(b"exactly-16-bytes");
        roundtrip(b"exactly-16-bytes\n");
    }

    #[test]
    fn log_corpus_round_trips_and_compresses() {
        let corpus = log_corpus();
        let codec = Lzah::default();
        let packed = codec.compress(&corpus);
        assert_eq!(codec.decompress(&packed).unwrap(), corpus);
        let ratio = corpus.len() as f64 / packed.len() as f64;
        assert!(
            ratio > 2.0,
            "log-like data should compress >2x, got {ratio:.2}"
        );
    }

    #[test]
    fn repeated_identical_lines_compress_hard() {
        let line = b"2005.06.03 R02-M1-N0 RAS KERNEL INFO cache parity error\n";
        let corpus: Vec<u8> = line
            .iter()
            .copied()
            .cycle()
            .take(line.len() * 200)
            .collect();
        let codec = Lzah::default();
        let ratio = codec.ratio(&corpus);
        // Every window after the first line hits the table: ratio near
        // W / 2 ≈ 8 minus header overhead.
        assert!(ratio > 5.0, "ratio {ratio:.2}");
        roundtrip(&corpus);
    }

    #[test]
    fn incompressible_data_round_trips_with_bounded_expansion() {
        // Pseudo-random bytes: virtually no window repeats.
        let mut x: u64 = 0x1234_5678;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let codec = Lzah::default();
        let packed = codec.compress(&data);
        assert!(packed.len() < data.len() + data.len() / 8 + 64);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn newline_realignment_improves_log_compression() {
        // Lines of varying length would misalign fixed windows; realignment
        // recovers the shared prefixes.
        let mut corpus = Vec::new();
        for i in 0..500 {
            corpus.extend_from_slice(
                format!("Jun 03 04:01:07 node-{:03} daemon restarted ok\n", i % 10).as_bytes(),
            );
        }
        let with = Lzah::new(LzahConfig::default()).ratio(&corpus);
        let without = Lzah::new(LzahConfig {
            newline_realign: false,
            ..LzahConfig::default()
        })
        .ratio(&corpus);
        assert!(
            with > without,
            "realign {with:.2} should beat no-realign {without:.2}"
        );
    }

    #[test]
    fn no_realign_config_still_round_trips() {
        let codec = Lzah::new(LzahConfig {
            newline_realign: false,
            ..LzahConfig::default()
        });
        let corpus = log_corpus();
        let packed = codec.compress(&corpus);
        assert_eq!(codec.decompress(&packed).unwrap(), corpus);
    }

    #[test]
    fn aligned_mode_pads_after_newlines() {
        let codec = Lzah::default();
        let input = b"short\nlonger line here\n";
        let packed = codec.compress(input);
        let aligned = codec.decompress_aligned(&packed).unwrap();
        // Every emitted word is full width, so output length is a multiple
        // of the word size and newlines are followed by zeros.
        assert_eq!(aligned.len() % 16, 0);
        let nl = aligned.iter().position(|&b| b == b'\n').unwrap();
        assert_eq!(nl, 5);
        assert!(aligned[6..16].iter().all(|&b| b == 0));
        // Stripping pad zeros after newlines recovers the exact stream.
        let exact = codec.decompress(&packed).unwrap();
        assert_eq!(exact, input);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let codec = Lzah::default();
        let mut packed = codec.compress(b"hello\n");
        packed[0] = b'X';
        assert!(matches!(
            codec.decompress(&packed),
            Err(DecompressError::BadHeader { .. })
        ));
    }

    #[test]
    fn truncated_stream_rejected() {
        let codec = Lzah::default();
        let packed = codec.compress(&log_corpus());
        for cut in [HEADER_LEN - 1, HEADER_LEN + 3, packed.len() / 2] {
            assert!(
                codec.decompress(&packed[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn stream_encoder_rollback_restores_state() {
        let cfg = LzahConfig::default();
        let mut enc = LzahStreamEncoder::new(cfg);
        enc.push_bytes(b"first line of text here\n", None);
        let baseline_len = enc.frame_len();
        let mut cp = enc.checkpoint();
        enc.push_bytes(b"second line that will be rolled back\n", Some(&mut cp));
        assert!(enc.frame_len() > baseline_len);
        enc.rollback(cp);
        assert_eq!(enc.frame_len(), baseline_len);
        // After rollback the encoder must behave as if the second line never
        // happened: finishing now must decode to only the first line.
        let packed = enc.finish();
        let out = Lzah::default().decompress(&packed).unwrap();
        assert_eq!(out, b"first line of text here\n");
    }

    #[test]
    fn rollback_across_a_chunk_flush_restores_payload() {
        // Regression: a checkpoint taken mid-chunk, followed by a push that
        // crosses the 128-pair chunk boundary (flushing and clearing the
        // payload buffer), must restore the partial chunk on rollback.
        let cfg = LzahConfig::default();
        let mut enc = LzahStreamEncoder::new(cfg);
        let line = "unique-prefix abcdefghij klmnopqrst 0123456789\n";
        // Fill close to (but below) one chunk: each line is 3 windows.
        for i in 0..40 {
            enc.push_bytes(format!("{i:03}{line}").as_bytes(), None);
        }
        let mut cp = enc.checkpoint();
        // This push crosses the 128-pair boundary.
        for i in 0..10 {
            enc.push_bytes(format!("x{i}{line}").as_bytes(), Some(&mut cp));
        }
        enc.rollback(cp);
        enc.push_bytes(b"final line\n", None);
        let packed = enc.finish();
        let out = Lzah::default().decompress(&packed).expect("valid frame");
        let mut expect = Vec::new();
        for i in 0..40 {
            expect.extend_from_slice(format!("{i:03}{line}").as_bytes());
        }
        expect.extend_from_slice(b"final line\n");
        assert_eq!(out, expect);
    }

    #[test]
    fn decompress_into_reuses_scratch_and_matches_decompress() {
        let codec = Lzah::default();
        let corpus = log_corpus();
        let big = codec.compress(&corpus);
        let small = codec.compress(b"short frame\n");
        let mut scratch = LzahScratch::new();
        // Alternate frame sizes through one workspace; every decode must
        // match the one-shot path byte for byte.
        for packed in [&big, &small, &big, &small, &big] {
            let got = codec.decompress_into(packed, &mut scratch).unwrap();
            assert_eq!(got, codec.decompress(packed).unwrap());
        }
    }

    #[test]
    fn frame_bytes_walks_structure_without_decoding() {
        let codec = Lzah::default();
        let corpus = log_corpus();
        let packed = codec.compress(&corpus);
        // The structure walk agrees with the full decode's consumed length,
        // including when the frame sits inside a zero-padded page.
        let mut padded = packed.clone();
        padded.resize(packed.len() + 512, 0);
        assert_eq!(codec.frame_bytes(&padded).unwrap(), packed.len());
        // Structural faults are still caught.
        for cut in [HEADER_LEN - 1, HEADER_LEN + 3, packed.len() / 2] {
            assert!(
                codec.frame_bytes(&packed[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut bad_magic = packed;
        bad_magic[0] = b'X';
        assert!(matches!(
            codec.frame_bytes(&bad_magic),
            Err(DecompressError::BadHeader { .. })
        ));
    }

    #[test]
    fn frame_len_matches_actual_output() {
        let cfg = LzahConfig::default();
        let mut enc = LzahStreamEncoder::new(cfg);
        for i in 0..100 {
            enc.push_bytes(format!("line number {i} with some text\n").as_bytes(), None);
        }
        let predicted = enc.frame_len();
        let actual = enc.finish().len();
        assert_eq!(predicted, actual);
    }

    #[test]
    fn multi_chunk_streams_round_trip() {
        // >128 pairs forces multiple chunks.
        let corpus: Vec<u8> = (0..3000)
            .map(|i| {
                if i % 47 == 0 {
                    b'\n'
                } else {
                    b'a' + (i % 23) as u8
                }
            })
            .collect();
        roundtrip(&corpus);
    }

    #[test]
    fn eight_byte_word_config_round_trips() {
        let codec = Lzah::new(LzahConfig {
            word_bytes: 8,
            hash_bits: 11,
            newline_realign: true,
        });
        let corpus = log_corpus();
        let packed = codec.compress(&corpus);
        assert_eq!(codec.decompress(&packed).unwrap(), corpus);
    }

    #[test]
    fn decompression_is_deterministic() {
        let codec = Lzah::default();
        let corpus = log_corpus();
        let packed = codec.compress(&corpus);
        assert_eq!(
            codec.decompress(&packed).unwrap(),
            codec.decompress(&packed).unwrap()
        );
    }
}
