//! The Snappy block format, implemented from the published format
//! description: a varint uncompressed length followed by tagged elements —
//! literals (tag 00) and copies with 1-, 2- or 4-byte offsets (tags
//! 01/10/11). Greedy matching over a 64 KB window, comparable to the
//! reference compressor.
//!
//! Completes the codec set of paper Table 4 (LZ4 / LZRW / **Snappy** /
//! LZAH) on the software side.

use crate::error::DecompressError;
use crate::Codec;

const MAX_PREALLOC: usize = 16 << 20;
const MAGIC: &[u8; 4] = b"SNPB";
const HEADER_LEN: usize = 5; // magic(4) ver(1); varint length follows
const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 65_535;

/// The Snappy block codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snappy;

impl Snappy {
    /// Creates the codec (stateless).
    pub fn new() -> Self {
        Snappy
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(input: &[u8], pos: &mut usize) -> Result<u64, DecompressError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *input
            .get(*pos)
            .ok_or(DecompressError::Truncated { at: *pos })?;
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecompressError::BadHeader {
                reason: "varint too long",
            });
        }
    }
}

/// Emits a literal run, splitting at the 60-byte short form / extended
/// length boundary per the format.
fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
    let mut rest = lit;
    while !rest.is_empty() {
        let n = rest.len().min(65_536);
        let len = n - 1;
        if len < 60 {
            out.push((len as u8) << 2);
        } else if len < 256 {
            out.push(60 << 2);
            out.push(len as u8);
        } else {
            out.push(61 << 2);
            out.push((len & 0xFF) as u8);
            out.push((len >> 8) as u8);
        }
        out.extend_from_slice(&rest[..n]);
        rest = &rest[n..];
    }
}

/// Emits a copy, decomposing long matches per the format's limits
/// (tag-1 copies: len 4–11 & offset < 2048; tag-2: len 1–64, 16-bit
/// offset).
fn emit_copy(out: &mut Vec<u8>, mut len: usize, offset: usize) {
    debug_assert!((1..=MAX_OFFSET).contains(&offset));
    while len > 0 {
        if (4..=11).contains(&len) && offset < 2048 {
            out.push(0b01 | (((len - 4) as u8) << 2) | (((offset >> 8) as u8) << 5));
            out.push((offset & 0xFF) as u8);
            return;
        }
        let n = len.min(64);
        // Avoid leaving a sub-4-byte tail that tag-2 can encode but whose
        // remainder would be illegal for tag-1: tag-2 handles 1..=64, so a
        // remainder of any size is fine; just never emit n < 4 unless it is
        // the whole remainder.
        let n = if len - n != 0 && len - n < 4 {
            len - 4
        } else {
            n
        };
        out.push(0b10 | (((n - 1) as u8) << 2));
        out.push((offset & 0xFF) as u8);
        out.push((offset >> 8) as u8);
        len -= n;
    }
}

impl Codec for Snappy {
    fn name(&self) -> &'static str {
        "Snappy"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + input.len() / 2 + 16);
        out.extend_from_slice(MAGIC);
        out.push(1);
        write_varint(&mut out, input.len() as u64);

        let mut table = vec![usize::MAX; 1 << 14];
        let hash = |b: &[u8]| -> usize {
            let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            (v.wrapping_mul(0x1E35_A7BD) >> 18) as usize & 0x3FFF
        };
        let mut pos = 0usize;
        let mut lit_start = 0usize;
        while pos + MIN_MATCH <= input.len() {
            let h = hash(&input[pos..]);
            let cand = table[h];
            table[h] = pos;
            if cand != usize::MAX
                && pos - cand <= MAX_OFFSET
                && input[cand..cand + MIN_MATCH] == input[pos..pos + MIN_MATCH]
            {
                let mut len = MIN_MATCH;
                while pos + len < input.len() && input[cand + len] == input[pos + len] {
                    len += 1;
                }
                emit_literal(&mut out, &input[lit_start..pos]);
                emit_copy(&mut out, len, pos - cand);
                pos += len;
                lit_start = pos;
            } else {
                pos += 1;
            }
        }
        emit_literal(&mut out, &input[lit_start..]);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, DecompressError> {
        if input.len() < HEADER_LEN {
            return Err(DecompressError::BadHeader {
                reason: "input shorter than header",
            });
        }
        if &input[..4] != MAGIC {
            return Err(DecompressError::BadHeader {
                reason: "missing SNPB magic",
            });
        }
        if input[4] != 1 {
            return Err(DecompressError::BadHeader {
                reason: "unsupported version",
            });
        }
        let mut pos = HEADER_LEN;
        let original_len = read_varint(input, &mut pos)? as usize;
        // Never trust a header length for allocation: a corrupt frame could
        // declare terabytes. Cap the pre-allocation; the vector still grows
        // to any legitimate size on demand.
        let mut out = Vec::with_capacity(original_len.min(MAX_PREALLOC));

        while pos < input.len() {
            let tag = input[pos];
            pos += 1;
            match tag & 0b11 {
                0b00 => {
                    // Literal.
                    let mut len = (tag >> 2) as usize;
                    if len >= 60 {
                        let extra = len - 59;
                        if pos + extra > input.len() {
                            return Err(DecompressError::Truncated { at: pos });
                        }
                        len = 0;
                        for i in 0..extra {
                            len |= (input[pos + i] as usize) << (8 * i);
                        }
                        pos += extra;
                    }
                    len += 1;
                    if pos + len > input.len() {
                        return Err(DecompressError::Truncated { at: pos });
                    }
                    out.extend_from_slice(&input[pos..pos + len]);
                    pos += len;
                }
                0b01 => {
                    if pos >= input.len() {
                        return Err(DecompressError::Truncated { at: pos });
                    }
                    let len = 4 + ((tag >> 2) & 0x7) as usize;
                    let offset = (((tag >> 5) as usize) << 8) | input[pos] as usize;
                    pos += 1;
                    copy_back(&mut out, offset, len)?;
                }
                0b10 => {
                    if pos + 2 > input.len() {
                        return Err(DecompressError::Truncated { at: pos });
                    }
                    let len = ((tag >> 2) as usize) + 1;
                    let offset = input[pos] as usize | ((input[pos + 1] as usize) << 8);
                    pos += 2;
                    copy_back(&mut out, offset, len)?;
                }
                _ => {
                    // 4-byte-offset copies are never emitted by this
                    // compressor (window ≤ 64 KB) but decode for
                    // completeness.
                    if pos + 4 > input.len() {
                        return Err(DecompressError::Truncated { at: pos });
                    }
                    let len = ((tag >> 2) as usize) + 1;
                    let offset =
                        u32::from_le_bytes(input[pos..pos + 4].try_into().expect("4 bytes"))
                            as usize;
                    pos += 4;
                    copy_back(&mut out, offset, len)?;
                }
            }
        }

        if out.len() != original_len {
            return Err(DecompressError::LengthMismatch {
                expected: original_len,
                got: out.len(),
            });
        }
        Ok(out)
    }
}

fn copy_back(out: &mut Vec<u8>, offset: usize, len: usize) -> Result<(), DecompressError> {
    if offset == 0 || offset > out.len() {
        return Err(DecompressError::BadReference { at: out.len() });
    }
    let start = out.len() - offset;
    for i in 0..len {
        let b = out[start + i];
        out.push(b);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::log_corpus;

    fn roundtrip(input: &[u8]) {
        let c = Snappy::new();
        let packed = c.compress(input);
        assert_eq!(c.decompress(&packed).unwrap(), input, "len {}", input.len());
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(b"aaaaaaaaaaaaaaaa");
    }

    #[test]
    fn log_corpus_roundtrips_and_compresses() {
        let corpus = log_corpus();
        let c = Snappy::new();
        let packed = c.compress(&corpus);
        assert_eq!(c.decompress(&packed).unwrap(), corpus);
        let ratio = corpus.len() as f64 / packed.len() as f64;
        assert!(ratio > 3.0, "ratio {ratio:.2}");
    }

    #[test]
    fn snappy_and_lz4_land_close() {
        // Table 4 shows LZ4 and Snappy as near-identical FPGA designs; the
        // software ratios should be in the same ballpark too.
        let corpus = log_corpus();
        let s = Snappy::new().ratio(&corpus);
        let l = crate::Lz4::new().ratio(&corpus);
        assert!((s / l - 1.0).abs() < 0.35, "snappy {s:.2} vs lz4 {l:.2}");
    }

    #[test]
    fn long_literals_use_extended_lengths() {
        let mut x: u64 = 3;
        let data: Vec<u8> = (0..70_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_matches_decompose() {
        let data = vec![b'q'; 50_000];
        let c = Snappy::new();
        let packed = c.compress(&data);
        assert!(packed.len() < 3000, "{}", packed.len());
        assert_eq!(c.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn overlapping_copies() {
        let mut data = b"abc".to_vec();
        for _ in 0..1000 {
            data.extend_from_slice(b"abc");
        }
        roundtrip(&data);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 65_535, 1 << 20, u32::MAX as u64] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn corruption_detected() {
        let c = Snappy::new();
        let packed = c.compress(&log_corpus());
        assert!(c.decompress(&packed[..8]).is_err());
        let mut bad = packed.clone();
        bad[0] = b'X';
        assert!(c.decompress(&bad).is_err());
    }

    #[test]
    fn bad_offset_rejected() {
        let mut stream = Vec::new();
        stream.extend_from_slice(MAGIC);
        stream.push(1);
        write_varint(&mut stream, 10);
        stream.push(0b10 | (3 << 2)); // copy len 4
        stream.extend_from_slice(&[0, 0]); // offset 0
        assert!(matches!(
            Snappy::new().decompress(&stream),
            Err(DecompressError::BadReference { .. })
        ));
    }
}
