use std::error::Error;
use std::fmt;

/// Error decompressing a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The input ended before the declared payload was complete.
    Truncated {
        /// Byte position where more input was expected.
        at: usize,
    },
    /// The frame header is missing or malformed.
    BadHeader {
        /// Human-readable description of the problem.
        reason: &'static str,
    },
    /// A back-reference pointed outside the already-decoded output.
    BadReference {
        /// Output position at which the reference was found.
        at: usize,
    },
    /// The decoded length does not match the length declared in the header.
    LengthMismatch {
        /// Length declared by the frame header.
        expected: usize,
        /// Length actually produced.
        got: usize,
    },
    /// A Huffman code or symbol outside the valid alphabet was encountered.
    BadSymbol {
        /// Bit position in the stream.
        at: usize,
    },
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated { at } => {
                write!(f, "compressed stream truncated at byte {at}")
            }
            DecompressError::BadHeader { reason } => write!(f, "bad frame header: {reason}"),
            DecompressError::BadReference { at } => {
                write!(f, "back-reference out of range at output byte {at}")
            }
            DecompressError::LengthMismatch { expected, got } => {
                write!(f, "decoded {got} bytes but header declared {expected}")
            }
            DecompressError::BadSymbol { at } => write!(f, "invalid symbol at bit {at}"),
        }
    }
}

impl Error for DecompressError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_positions() {
        assert!(DecompressError::Truncated { at: 10 }
            .to_string()
            .contains("10"));
        assert!(DecompressError::LengthMismatch {
            expected: 5,
            got: 3
        }
        .to_string()
        .contains('5'));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<DecompressError>();
    }
}
