//! LSB-first bit-level readers and writers shared by the entropy-coded
//! codecs ([`Gzf`](crate::Gzf)).

use crate::error::DecompressError;

/// LSB-first bit writer accumulating into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 57` (accumulator headroom) in debug builds.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57);
        debug_assert!(n == 64 || value < (1u64 << n));
        self.acc |= value << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Flushes any partial byte (zero-padded) and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }

    /// Number of complete bytes written so far.
    pub fn bytes_written(&self) -> usize {
        self.out.len()
    }
}

/// LSB-first bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= u64::from(self.data[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Reads `n` bits LSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError::Truncated`] if fewer than `n` bits remain.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, DecompressError> {
        debug_assert!(n <= 57);
        self.refill();
        if self.nbits < n {
            return Err(DecompressError::Truncated { at: self.pos });
        }
        let v = self.acc & ((1u64 << n) - 1);
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Peeks up to `n` bits without consuming them; missing bits read as 0.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        self.refill();
        self.acc & ((1u64 << n) - 1)
    }

    /// Consumes `n` bits previously peeked.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError::Truncated`] if fewer than `n` bits remain.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<(), DecompressError> {
        if self.nbits < n {
            return Err(DecompressError::Truncated { at: self.pos });
        }
        self.acc >>= n;
        self.nbits -= n;
        Ok(())
    }

    /// Current bit position (approximate, for error reporting).
    pub fn bit_pos(&self) -> usize {
        self.pos * 8 - self.nbits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let values = [
            (0b1u64, 1u32),
            (0b1011, 4),
            (0xFF, 8),
            (0x1234, 16),
            (0, 3),
            (0x1F_FFFF, 21),
            (1, 1),
        ];
        for (v, n) in values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, n) in values {
            assert_eq!(r.read_bits(n).unwrap(), v, "width {n}");
        }
    }

    #[test]
    fn truncated_read_errors() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        // Remaining padding is 5 bits; asking for 8 must fail.
        assert!(r.read_bits(8).is_err());
    }

    #[test]
    fn peek_then_consume_matches_read() {
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(4), 0xD);
        r.consume(4).unwrap();
        assert_eq!(r.read_bits(12).unwrap(), 0xABC);
    }

    #[test]
    fn peek_beyond_end_pads_zero() {
        let bytes = [0b0000_0001u8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(16), 1);
    }

    #[test]
    fn empty_reader_reads_zero_bits_ok() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn bytes_written_excludes_partial_byte() {
        let mut w = BitWriter::new();
        w.write_bits(0x3FF, 10);
        assert_eq!(w.bytes_written(), 1);
        w.write_bits(0x3F, 6);
        assert_eq!(w.bytes_written(), 2);
    }

    #[test]
    fn bit_pos_tracks_consumption() {
        let bytes = [0xFFu8; 4];
        let mut r = BitReader::new(&bytes);
        r.read_bits(5).unwrap();
        assert_eq!(r.bit_pos(), 5);
        r.read_bits(11).unwrap();
        assert_eq!(r.bit_pos(), 16);
    }
}
