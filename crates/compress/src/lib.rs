//! Log-optimized compression for MithriLog (paper §5), plus from-scratch
//! baselines used in the paper's comparison tables.
//!
//! The star is **LZAH** ("LZ Aligned Header"), the paper's hardware-friendly
//! codec: a word-aligned LZRW1 derivative that (1) moves a fixed 16-byte
//! window across the input in word-aligned steps, realigning at newline
//! characters to recover the cross-line redundancy of logs, and (2) groups
//! 128 header bits into word-aligned chunks so a hardware decoder never
//! needs a variable shifter on the header path. Its decompressor emits one
//! word per cycle deterministically — the property that lets the prototype
//! guarantee 3.2 GB/s per pipeline.
//!
//! Baselines, all implemented here from scratch (no external codec crates):
//!
//! * [`Lzrw1`] — Ross Williams' LZRW1 (1991), the algorithm LZAH derives
//!   from: byte-granular, 4 KB window, 16-item control groups.
//! * [`Lz4`] — the LZ4 block format (token byte, literal runs, 2-byte
//!   offsets), greedy matching over a 64 KB window.
//! * [`Snappy`] — the Snappy block format (varint length, tagged literal
//!   and copy elements), completing Table 4's codec set.
//! * [`Gzf`] — a DEFLATE-class LZSS + canonical-Huffman codec standing in
//!   for Gzip in the compression-ratio comparison (Table 5).
//!
//! Every codec implements the [`Codec`] trait; round-trip correctness is
//! property-tested in the crate's test suite.
//!
//! # Example
//!
//! ```
//! use mithrilog_compress::{Codec, Lzah};
//!
//! let codec = Lzah::default();
//! let log = b"Jun 3 node-1 up\nJun 3 node-2 up\nJun 3 node-3 up\n".repeat(50);
//! let packed = codec.compress(&log);
//! assert!(packed.len() < log.len());
//! assert_eq!(codec.decompress(&packed)?, log);
//! # Ok::<(), mithrilog_compress::DecompressError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
mod error;
mod gzf;
pub mod huffman;
mod lz4;
mod lzah;
mod lzrw1;
mod paged;
mod snappy;

pub use error::DecompressError;
pub use gzf::Gzf;
pub use lz4::Lz4;
pub use lzah::{Lzah, LzahConfig, LzahScratch};
pub use lzrw1::Lzrw1;
pub use paged::{compress_paged, decompress_page, PagedLog};
pub use snappy::Snappy;

/// A lossless compression codec.
///
/// All MithriLog codecs are deterministic and self-framing: `decompress`
/// needs nothing beyond the bytes `compress` produced.
pub trait Codec {
    /// Short human-readable codec name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Compresses `input` into a self-framing buffer.
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompresses a buffer produced by [`Codec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError`] if the input is truncated or corrupt.
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, DecompressError>;

    /// Convenience: compression ratio (original / compressed) on `input`.
    fn ratio(&self, input: &[u8]) -> f64 {
        if input.is_empty() {
            return 1.0;
        }
        let compressed = self.compress(input);
        input.len() as f64 / compressed.len() as f64
    }
}

#[cfg(test)]
pub(crate) mod testdata {
    /// A synthetic but structurally log-like corpus shared by codec tests.
    pub fn log_corpus() -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..400u32 {
            let node = i % 37;
            let sev = if i % 11 == 0 { "FATAL" } else { "INFO" };
            out.extend_from_slice(
                format!(
                    "- 11173{i:04} 2005.06.03 R{:02}-M0-NC-lk:virtual node-{node} RAS KERNEL {sev} \
                     instruction cache parity error corrected seq={i}\n",
                    node % 64
                )
                .as_bytes(),
            );
        }
        out
    }
}
