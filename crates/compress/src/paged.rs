//! Page-aligned LZAH framing (paper Figure 9: "each compressed data in each
//! storage page can be decompressed independently by aligning chunks at page
//! boundaries").
//!
//! Log text is packed greedily, line by line, into frames that each fit in
//! one storage page; every frame resets the codec's hash table so pages are
//! independently decompressible — the property that lets the inverted index
//! hand the accelerator an arbitrary subset of pages.

use crate::error::DecompressError;
use crate::lzah::{Lzah, LzahConfig, LzahStreamEncoder};

/// A log corpus compressed into independently-decompressible pages.
#[derive(Debug, Clone)]
pub struct PagedLog {
    pages: Vec<PageFrame>,
    page_bytes: usize,
    raw_bytes: usize,
}

/// One compressed page frame plus its layout metadata.
#[derive(Debug, Clone)]
pub struct PageFrame {
    data: Vec<u8>,
    raw_len: usize,
    lines: usize,
    starts_mid_line: bool,
}

impl PageFrame {
    /// The compressed frame bytes (≤ page size).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Bytes of original text this page decompresses to.
    pub fn raw_len(&self) -> usize {
        self.raw_len
    }

    /// Number of complete lines beginning in this page.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Whether the page begins in the middle of a line (only possible when
    /// a single line exceeds one page of compressed capacity).
    pub fn starts_mid_line(&self) -> bool {
        self.starts_mid_line
    }
}

impl PagedLog {
    /// The compressed pages in order.
    pub fn pages(&self) -> &[PageFrame] {
        &self.pages
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Configured page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Total raw bytes across all pages.
    pub fn raw_bytes(&self) -> usize {
        self.raw_bytes
    }

    /// Total compressed bytes (sum of frame lengths, without page padding).
    pub fn compressed_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.data.len()).sum()
    }

    /// Overall compression ratio including per-page framing overhead.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes() == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.compressed_bytes() as f64
    }
}

/// Compresses a text corpus into page-sized LZAH frames.
///
/// Lines (including their trailing `\n`) are never split across pages unless
/// a single line's compressed form exceeds one page, in which case it spills
/// and the continuation page is flagged via `PageFrame::starts_mid_line`.
///
/// # Panics
///
/// Panics if `page_bytes` is too small to hold even a single input word
/// (< 128 bytes), or if `config.newline_realign` is disabled — paged framing
/// relies on newline realignment to keep intermediate windows
/// reconstructible, exactly as the hardware does.
pub fn compress_paged(input: &[u8], config: LzahConfig, page_bytes: usize) -> PagedLog {
    assert!(page_bytes >= 128, "page must hold at least one chunk");
    assert!(
        config.newline_realign,
        "paged framing requires newline realignment"
    );
    let mut pages = Vec::new();
    let mut enc = LzahStreamEncoder::new(config);
    let mut lines_in_page = 0usize;
    let mut page_starts_mid_line = false;
    let mut next_starts_mid_line = false;

    let mut flush =
        |enc: &mut LzahStreamEncoder, lines: &mut usize, mid: &mut bool, next_mid: bool| {
            let finished = std::mem::replace(enc, LzahStreamEncoder::new(config));
            let raw_len = finished.original_len();
            if raw_len == 0 {
                return;
            }
            pages.push(PageFrame {
                data: finished.finish(),
                raw_len,
                lines: *lines,
                starts_mid_line: *mid,
            });
            *lines = 0;
            *mid = next_mid;
        };

    let mut pos = 0usize;
    while pos < input.len() {
        let line_end = input[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|k| pos + k + 1)
            .unwrap_or(input.len());
        let line = &input[pos..line_end];

        let mut cp = enc.checkpoint();
        enc.push_bytes(line, Some(&mut cp));
        if enc.frame_len() <= page_bytes {
            lines_in_page += 1;
            pos = line_end;
            continue;
        }
        enc.rollback(cp);

        if enc.original_len() > 0 {
            // Page has content: flush it and retry the line on a fresh page.
            flush(
                &mut enc,
                &mut lines_in_page,
                &mut page_starts_mid_line,
                false,
            );
            continue;
        }

        // A single line too big for one page: split it at the largest prefix
        // that fits, and flag the continuation.
        let mut fitted = 0usize;
        let step = config.word_bytes.max(16);
        loop {
            let next = (fitted + step).min(line.len());
            if next == fitted {
                break;
            }
            let mut cp = enc.checkpoint();
            enc.push_bytes(&line[fitted..next], Some(&mut cp));
            if enc.frame_len() > page_bytes {
                enc.rollback(cp);
                break;
            }
            fitted = next;
        }
        assert!(fitted > 0, "page too small for a single input word");
        lines_in_page += usize::from(fitted == line.len());
        next_starts_mid_line = fitted < line.len();
        pos += fitted;
        flush(
            &mut enc,
            &mut lines_in_page,
            &mut page_starts_mid_line,
            next_starts_mid_line,
        );
    }
    flush(
        &mut enc,
        &mut lines_in_page,
        &mut page_starts_mid_line,
        false,
    );
    let _ = next_starts_mid_line;

    let raw_bytes = input.len();
    PagedLog {
        pages,
        page_bytes,
        raw_bytes,
    }
}

/// Decompresses one page frame back to raw text.
///
/// # Errors
///
/// Returns [`DecompressError`] if the frame is corrupt.
pub fn decompress_page(frame: &PageFrame) -> Result<Vec<u8>, DecompressError> {
    use crate::Codec;
    Lzah::default().decompress(frame.data())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::log_corpus;
    use crate::Codec;

    #[test]
    fn pages_reassemble_exactly() {
        let corpus = log_corpus();
        let paged = compress_paged(&corpus, LzahConfig::default(), 4096);
        assert!(paged.page_count() > 1, "corpus should span multiple pages");
        let mut rebuilt = Vec::new();
        for p in paged.pages() {
            rebuilt.extend_from_slice(&decompress_page(p).unwrap());
        }
        assert_eq!(rebuilt, corpus);
    }

    #[test]
    fn every_frame_fits_its_page() {
        let corpus = log_corpus();
        let paged = compress_paged(&corpus, LzahConfig::default(), 4096);
        for (i, p) in paged.pages().iter().enumerate() {
            assert!(
                p.data().len() <= 4096,
                "page {i} frame is {} bytes",
                p.data().len()
            );
        }
    }

    #[test]
    fn pages_split_on_line_boundaries() {
        let corpus = log_corpus();
        let paged = compress_paged(&corpus, LzahConfig::default(), 4096);
        for p in paged.pages() {
            assert!(!p.starts_mid_line());
            let raw = decompress_page(p).unwrap();
            assert_eq!(*raw.last().unwrap(), b'\n', "page must end at a line end");
        }
    }

    #[test]
    fn line_counts_sum_to_corpus_lines() {
        let corpus = log_corpus();
        let expected = corpus.iter().filter(|&&b| b == b'\n').count();
        let paged = compress_paged(&corpus, LzahConfig::default(), 4096);
        let total: usize = paged.pages().iter().map(PageFrame::lines).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn oversized_line_spills_with_flag() {
        // One gigantic line of incompressible-ish content.
        let mut line: Vec<u8> = (0..20_000u32)
            .flat_map(|i| format!("{i:x}-").into_bytes())
            .collect();
        line.push(b'\n');
        let paged = compress_paged(&line, LzahConfig::default(), 4096);
        assert!(paged.page_count() > 1);
        assert!(paged.pages()[1].starts_mid_line());
        let mut rebuilt = Vec::new();
        for p in paged.pages() {
            rebuilt.extend_from_slice(&decompress_page(p).unwrap());
        }
        assert_eq!(rebuilt, line);
    }

    #[test]
    fn paged_ratio_close_to_unpaged() {
        let corpus: Vec<u8> = log_corpus().iter().copied().cycle().take(200_000).collect();
        let unpaged = Lzah::default().ratio(&corpus);
        let paged = compress_paged(&corpus, LzahConfig::default(), 4096).ratio();
        // Per-page table resets cost some ratio, but not a collapse.
        assert!(
            paged > unpaged * 0.5,
            "paged {paged:.2} vs unpaged {unpaged:.2}"
        );
    }

    #[test]
    fn missing_trailing_newline_is_preserved() {
        let corpus = b"first line\nsecond line without newline";
        let paged = compress_paged(corpus, LzahConfig::default(), 4096);
        let mut rebuilt = Vec::new();
        for p in paged.pages() {
            rebuilt.extend_from_slice(&decompress_page(p).unwrap());
        }
        assert_eq!(rebuilt, corpus);
    }

    #[test]
    fn empty_input_yields_no_pages() {
        let paged = compress_paged(b"", LzahConfig::default(), 4096);
        assert_eq!(paged.page_count(), 0);
        assert_eq!(paged.ratio(), 1.0);
    }
}
