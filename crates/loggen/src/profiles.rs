//! Per-dataset line formats and message template banks.
//!
//! Message texts are modeled on published excerpts of the real logs
//! (Oliner & Stearley DSN'07; the Figure 1 examples of the MithriLog
//! paper). `%…%` markers are variable fields filled by the generator.

use rand::rngs::StdRng;
use rand::Rng;

/// One of the four HPC4 dataset profiles (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// BlueGene/L RAS log (LLNL): smallest, lowest compression ratio.
    Bgl2,
    /// Liberty cluster syslog (Sandia).
    Liberty2,
    /// Spirit cluster syslog (Sandia).
    Spirit2,
    /// Thunderbird cluster syslog (Sandia): largest line rate.
    Thunderbird,
}

impl DatasetProfile {
    /// All four profiles in the paper's column order.
    pub fn all() -> [DatasetProfile; 4] {
        [
            DatasetProfile::Bgl2,
            DatasetProfile::Liberty2,
            DatasetProfile::Spirit2,
            DatasetProfile::Thunderbird,
        ]
    }

    /// Dataset name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetProfile::Bgl2 => "BGL2",
            DatasetProfile::Liberty2 => "Liberty2",
            DatasetProfile::Spirit2 => "Spirit2",
            DatasetProfile::Thunderbird => "Thunderbird",
        }
    }

    /// Starting Unix epoch for timestamps (matches each log's real era).
    pub(crate) fn start_epoch(&self) -> u64 {
        match self {
            DatasetProfile::Bgl2 => 1_117_838_570,        // June 2005
            DatasetProfile::Liberty2 => 1_102_061_216,    // Dec 2004
            DatasetProfile::Spirit2 => 1_104_566_461,     // Jan 2005
            DatasetProfile::Thunderbird => 1_131_566_461, // Nov 2005
        }
    }

    /// Redundancy characteristics controlling how strongly values repeat —
    /// calibrated so each profile's compression behaviour matches its
    /// namesake's Table 5 row (BGL2 least window-repetitive, Thunderbird
    /// most).
    pub(crate) fn redundancy(&self) -> Redundancy {
        match self {
            // BGL lines carry two copies of a high-cardinality node name
            // plus a line-unique microsecond timestamp, so its windows
            // repeat worst.
            DatasetProfile::Bgl2 => Redundancy {
                node_pool: 320,
                burst_continue: 0.3,
                value_reuse: 0.6,
                value_pool: 24,
                node_zipf: 2,
                epoch_advance: 0.05,
            },
            DatasetProfile::Liberty2 => Redundancy {
                node_pool: 72,
                burst_continue: 0.75,
                value_reuse: 0.9,
                value_pool: 8,
                node_zipf: 4,
                epoch_advance: 0.02,
            },
            DatasetProfile::Spirit2 => Redundancy {
                node_pool: 56,
                burst_continue: 0.85,
                value_reuse: 0.95,
                value_pool: 5,
                node_zipf: 7,
                epoch_advance: 0.012,
            },
            // Thunderbird traffic is famously dominated by a handful of
            // admin/service nodes emitting the same heartbeat lines.
            DatasetProfile::Thunderbird => Redundancy {
                node_pool: 48,
                burst_continue: 0.9,
                value_reuse: 0.98,
                value_pool: 4,
                node_zipf: 8,
                epoch_advance: 0.008,
            },
        }
    }

    /// The weighted message bank: `(weight, text-with-%FIELDS%)`.
    pub(crate) fn messages(&self) -> &'static [(u32, &'static str)] {
        match self {
            DatasetProfile::Bgl2 => BGL_MESSAGES,
            DatasetProfile::Liberty2 => LIBERTY_MESSAGES,
            DatasetProfile::Spirit2 => SPIRIT_MESSAGES,
            DatasetProfile::Thunderbird => TBIRD_MESSAGES,
        }
    }

    /// Generates a node/source name in this profile's convention.
    ///
    /// Names are fixed-width within each profile (zero-padded numbers) so
    /// that message bytes land at the same line offsets regardless of the
    /// source node — matching the real clusters' uniform naming and
    /// essential for the word-aligned window repetition LZAH exploits.
    pub(crate) fn node_name(&self, rng: &mut StdRng) -> String {
        match self {
            DatasetProfile::Bgl2 => format!(
                "R{:02}-M{}-N{:02}-{}:J{:02}-U{:02}",
                rng.gen_range(0..64),
                rng.gen_range(0..2),
                rng.gen_range(0..16),
                if rng.gen_bool(0.5) { 'C' } else { 'I' },
                rng.gen_range(0..24),
                rng.gen_range(0..34),
            ),
            DatasetProfile::Liberty2 => format!("liberty{:03}", rng.gen_range(1..446)),
            DatasetProfile::Spirit2 => format!("sn{:03}", rng.gen_range(1..513)),
            DatasetProfile::Thunderbird => {
                if rng.gen_bool(0.2) {
                    "tbird-admin1".to_string()
                } else {
                    format!("bn{:04}", rng.gen_range(1..4481))
                }
            }
        }
    }

    /// Formats one complete line given the filled message body. `seq` is a
    /// per-line sequence number used where the real log carries a
    /// line-unique field (BGL's microsecond timestamps).
    pub(crate) fn format_line(&self, epoch: u64, seq: u64, node: &str, msg: &str) -> String {
        let date = epoch_date(epoch);
        let clock = epoch_clock(epoch);
        match self {
            DatasetProfile::Bgl2 => {
                // "- 1117838570 2005.06.03 R02-M1-N0-C:J12-U11
                //  2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS <msg>"
                // The microsecond field is unique per line, as in the real
                // log — one reason BGL compresses worst under LZAH.
                format!(
                    "- {epoch} {date} {node} {}-{}.{:06} {node} RAS {msg}\n",
                    date.replace('.', "-"),
                    clock.replace(':', "."),
                    (seq.wrapping_mul(363_779)) % 1_000_000
                )
            }
            DatasetProfile::Liberty2 | DatasetProfile::Spirit2 => {
                // "- 1102061216 2004.12.03 liberty2 Dec 3 01:26:56
                //  liberty2/liberty2 <msg>"
                format!(
                    "- {epoch} {date} {node} {} {clock} {node}/{node} {msg}\n",
                    epoch_month_day(epoch)
                )
            }
            DatasetProfile::Thunderbird => {
                // "- 1131566461 2005.11.09 tbird-admin1 Nov 9 12:01:01
                //  local@tbird-admin1 <msg>"
                format!(
                    "- {epoch} {date} {node} {} {clock} local@{node} {msg}\n",
                    epoch_month_day(epoch)
                )
            }
        }
    }
}

/// Knobs controlling value repetition in one profile's generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Redundancy {
    /// Distinct node names in circulation.
    pub node_pool: usize,
    /// Probability the next line comes from the same node as the previous
    /// one (bursty sources).
    pub burst_continue: f64,
    /// Probability a variable field reuses a pooled value instead of a
    /// fresh one.
    pub value_reuse: f64,
    /// Pooled values kept per variable-field kind.
    pub value_pool: usize,
    /// Zipf skew exponent of the node popularity distribution (higher =
    /// a few hot nodes dominate).
    pub node_zipf: i32,
    /// Probability the timestamp advances between consecutive lines
    /// (lower = more lines per second = denser repetition).
    pub epoch_advance: f64,
}

impl std::fmt::Display for DatasetProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Simplified civil-date arithmetic (months of 30 days): the evaluation
/// needs plausible, monotone date tokens, not calendrical exactness.
fn epoch_parts(epoch: u64) -> (u64, u64, u64) {
    let days = epoch / 86_400;
    let year = 1970 + days / 360;
    let month = (days % 360) / 30 + 1;
    let day = (days % 30) + 1;
    (year, month, day)
}

fn epoch_date(epoch: u64) -> String {
    let (y, m, d) = epoch_parts(epoch);
    format!("{y}.{m:02}.{d:02}")
}

fn epoch_month_day(epoch: u64) -> String {
    let (_, m, d) = epoch_parts(epoch);
    format!("{} {d}", MONTHS[(m - 1) as usize])
}

fn epoch_clock(epoch: u64) -> String {
    format!(
        "{:02}:{:02}:{:02}",
        (epoch / 3600) % 24,
        (epoch / 60) % 60,
        epoch % 60
    )
}

/// BGL RAS messages (component + severity + text), after Figure 1 and the
/// public BGL template set.
static BGL_MESSAGES: &[(u32, &str)] = &[
    (500, "KERNEL INFO instruction cache parity error corrected"),
    (400, "KERNEL INFO generating core.%NUM%"),
    (350, "KERNEL INFO CE sym %NUM%, at 0x%HEX%, mask 0x%HEX2%"),
    (300, "KERNEL INFO %NUM% double-hummer alignment exceptions"),
    (250, "KERNEL INFO ddr: activating redundant bit steering: rank=%NUM% symbol=%NUM%"),
    (120, "KERNEL FATAL data storage interrupt"),
    (100, "KERNEL FATAL machine check interrupt (bit=0x%HEX2%): L2 dcache unit data parity error"),
    (90, "KERNEL FATAL data TLB error interrupt"),
    (80, "KERNEL FATAL idoproxydb hit ASSERT condition: ASSERT expression=%NUM%"),
    (200, "APP FATAL ciod: failed to read message prefix on control stream (CioStream socket to %IP%:%PORT%"),
    (150, "APP FATAL ciod: Error loading /g/g%NUM%/%USER%/%FILE%: invalid or missing program image"),
    (120, "APP FATAL ciod: LOGIN chdir(/p/gb1/%USER%/%FILE%) failed: No such file or directory"),
    (60, "APP SEVERE ciod: Error creating node map from file %FILE%: No child processes"),
    (180, "KERNEL INFO shutdown complete"),
    (150, "KERNEL INFO external input interrupt (unit=0x%HEX2% bit=0x%HEX2%): uncorrectable torus error"),
    (90, "DISCOVERY WARNING node card VPD check: missing %NUM% node cards"),
    (70, "DISCOVERY SEVERE node card is not fully functional"),
    (110, "MMCS INFO mmcs_server started"),
    (50, "MONITOR FAILURE monitor caught java.net.SocketException: Broken pipe and is stopping"),
    (40, "HARDWARE WARNING Health Monitor detected a problem on %NODESHORT%"),
];

/// Liberty syslog messages, after the public Liberty template set.
static LIBERTY_MESSAGES: &[(u32, &str)] = &[
    (600, "crond(pam_unix)[%PID%]: session opened for user root by (uid=0)"),
    (580, "crond(pam_unix)[%PID%]: session closed for user root"),
    (400, "sshd(pam_unix)[%PID%]: session opened for user %USER% by (uid=0)"),
    (390, "sshd(pam_unix)[%PID%]: session closed for user %USER%"),
    (300, "sshd[%PID%]: Accepted publickey for %USER% from %IP% port %PORT% ssh2"),
    (120, "sshd[%PID%]: Failed password for %USER% from %IP% port %PORT% ssh2"),
    (100, "sshd[%PID%]: Did not receive identification string from %IP%"),
    (250, "kernel: i8042.c: Can't read CTR while initializing i8042."),
    (200, "kernel: nfs: server ladmin2 not responding, still trying"),
    (180, "kernel: nfs: server ladmin2 OK"),
    (220, "pbs_mom: scan_for_exiting, job %JOB%.ladmin2 task %NUM% terminated"),
    (210, "pbs_mom: im_eof, Premature end of message from addr %IP%:%PORT%"),
    (160, "pbs_mom: task_check, cannot tm_reply to %JOB%.ladmin2 task %NUM%"),
    (90, "pbs_mom: job %JOB%.ladmin2 failed to get gid for group"),
    (140, "ntpd[%PID%]: synchronized to %IP%, stratum %NUM%"),
    (110, "ntpd[%PID%]: kernel time sync enabled %NUM%"),
    (80, "su(pam_unix)[%PID%]: session opened for user news by (uid=0)"),
    (60, "logrotate: ALERT exited abnormally with [%NUM%]"),
    (50, "kernel: EXT3-fs error (device sd(%NUM%,%NUM%)): ext3_find_entry: reading directory #%NUM% offset %NUM%"),
    (40, "gmond[%PID%]: Error 5 sending message to %IP%"),
];

/// Spirit syslog messages, after the public Spirit template set.
static SPIRIT_MESSAGES: &[(u32, &str)] = &[
    (
        2400,
        "kernel: hda: drive_cmd: status=0x51 { DriveReady SeekComplete Error }",
    ),
    (
        2300,
        "kernel: hda: drive_cmd: error=0x04 { AbortedCommand }",
    ),
    (
        450,
        "crond(pam_unix)[%PID%]: session opened for user root by (uid=0)",
    ),
    (440, "crond(pam_unix)[%PID%]: session closed for user root"),
    (
        300,
        "sshd[%PID%]: Accepted publickey for %USER% from %IP% port %PORT% ssh2",
    ),
    (
        130,
        "sshd[%PID%]: Failed password for illegal user %USER% from %IP% port %PORT% ssh2",
    ),
    (
        280,
        "pbs_mom: scan_for_exiting, job %JOB%.sadmin1 task %NUM% terminated",
    ),
    (
        240,
        "pbs_mom: im_eof, Premature end of message from addr %IP%:%PORT%",
    ),
    (
        100,
        "pbs_mom: sister could not communicate with job %JOB%.sadmin1",
    ),
    (
        90,
        "pbs_mom: kill_task, kill task %NUM% gracefully with sig %NUM%",
    ),
    (
        200,
        "kernel: nfs: server sadmin2 not responding, still trying",
    ),
    (190, "kernel: nfs: server sadmin2 OK"),
    (150, "ntpd[%PID%]: synchronized to %IP%, stratum %NUM%"),
    (120, "kernel: ip_tables: (C) 2000-2002 Netfilter core team"),
    (110, "syslogd 1.4.1: restart."),
    (80, "kernel: VFS: busy inodes on changed media."),
    (70, "automount[%PID%]: expired /misc/%FILE%"),
    (
        60,
        "kernel: CSLIP: code copyright 1989 Regents of the University of California",
    ),
    (50, "xinetd[%PID%]: START: auth pid=%PID% from=%IP%"),
    (40, "kernel: martian source %IP% from %IP%, on dev eth%NUM%"),
];

/// Thunderbird syslog messages, after the public Thunderbird template set.
static TBIRD_MESSAGES: &[(u32, &str)] = &[
    (
        2600,
        "ib_sm.x[24583]: [ib_sm_sweep.c:826]: No topology change",
    ),
    (
        900,
        "kernel: e1000: eth0: e1000_clean_tx_irq: Detected Tx Unit Hang",
    ),
    (
        450,
        "crond(pam_unix)[%PID%]: session opened for user root by (uid=0)",
    ),
    (440, "crond(pam_unix)[%PID%]: session closed for user root"),
    (
        380,
        "sshd[%PID%]: Accepted publickey for %USER% from %IP% port %PORT% ssh2",
    ),
    (
        150,
        "sshd[%PID%]: Failed password for %USER% from %IP% port %PORT% ssh2",
    ),
    (
        320,
        "pbs_mom: scan_for_exiting, job %JOB%.tbird-sched task %NUM% terminated",
    ),
    (
        280,
        "pbs_mom: im_eof, Premature end of message from addr %IP%:%PORT%",
    ),
    (
        120,
        "pbs_mom: task_check, cannot tm_reply to %JOB%.tbird-sched task %NUM%",
    ),
    (260, "kernel: scsi0 (0:0): rejecting I/O to offline device"),
    (
        220,
        "kernel: mptscsih: ioc0: attempting task abort! (sc=%HEX%)",
    ),
    (200, "ntpd[%PID%]: synchronized to %IP%, stratum %NUM%"),
    (180, "dhcpd: DHCPDISCOVER from %MAC% via eth%NUM%"),
    (170, "dhcpd: DHCPOFFER on %IP% to %MAC% via eth%NUM%"),
    (140, "kernel: ACPI: Processor [CPU%NUM%] (supports C1)"),
    (100, "gmond[%PID%]: Error 5 sending message to %IP%"),
    (
        90,
        "kernel: Losing some ticks... checking if CPU frequency changed.",
    ),
    (70, "in.tftpd[%PID%]: tftp: client does not accept options"),
    (
        60,
        "kernel: EXT2-fs warning: checktime reached, running e2fsck is recommended",
    ),
    (50, "postfix/smtpd[%PID%]: connect from unknown[%IP%]"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn names_match_paper_columns() {
        let names: Vec<&str> = DatasetProfile::all().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["BGL2", "Liberty2", "Spirit2", "Thunderbird"]);
    }

    #[test]
    fn every_profile_has_a_rich_message_bank() {
        for p in DatasetProfile::all() {
            assert!(p.messages().len() >= 20, "{p} bank too small");
            assert!(p.messages().iter().all(|(w, _)| *w > 0));
        }
    }

    #[test]
    fn node_names_follow_conventions() {
        let mut rng = StdRng::seed_from_u64(1);
        let bgl = DatasetProfile::Bgl2.node_name(&mut rng);
        assert!(bgl.starts_with('R') && bgl.contains(":J"), "{bgl}");
        let lib = DatasetProfile::Liberty2.node_name(&mut rng);
        assert!(lib.starts_with("liberty"), "{lib}");
        let sp = DatasetProfile::Spirit2.node_name(&mut rng);
        assert!(sp.starts_with("sn"), "{sp}");
        let tb = DatasetProfile::Thunderbird.node_name(&mut rng);
        assert!(tb.starts_with("bn") || tb.starts_with("tbird"), "{tb}");
    }

    #[test]
    fn format_line_shapes() {
        let line = DatasetProfile::Bgl2.format_line(
            1_117_838_570,
            0,
            "R02-M1-N0-C:J12-U11",
            "KERNEL INFO x",
        );
        assert!(line.starts_with("- 1117838570 "));
        assert!(line.contains(" RAS KERNEL INFO x"));
        assert!(line.ends_with('\n'));
        let line = DatasetProfile::Liberty2.format_line(1_102_061_216, 0, "liberty2", "kernel: ok");
        assert!(line.contains("liberty2/liberty2 kernel: ok"));
        let line = DatasetProfile::Thunderbird.format_line(1_131_566_461, 0, "bn17", "x");
        assert!(line.contains("local@bn17"));
    }

    #[test]
    fn date_helpers_are_monotone_and_plausible() {
        let d1 = epoch_date(1_117_838_570);
        assert!(d1.starts_with("2005."), "{d1}");
        let c = epoch_clock(1_117_838_570);
        assert_eq!(c.len(), 8);
        let md = epoch_month_day(1_117_838_570);
        assert!(md.chars().next().unwrap().is_ascii_uppercase());
    }
}
