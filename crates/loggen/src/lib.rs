//! Deterministic synthetic log datasets modeled on the HPC4 corpus
//! (paper §7.1, Table 1).
//!
//! The paper evaluates on four real supercomputer logs — BGL2, Liberty2,
//! Spirit2 and Thunderbird \[Oliner & Stearley, DSN'07\] — which are tens of
//! gigabytes and not redistributable here. This crate substitutes
//! *structure-faithful* generators: each profile reproduces the published
//! line format of its namesake (BGL's RAS records, Liberty/Spirit's syslog,
//! Thunderbird's `local@` syslog), a bank of message templates with
//! Zipf-like weights, and high-cardinality variable fields (timestamps,
//! node names, addresses). What the evaluation depends on survives the
//! substitution: templated line structure for FT-tree, cross-line
//! repetition for compression, realistic token-length distributions for the
//! datapath statistics.
//!
//! Generation is fully deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
//!
//! let ds = generate(&DatasetSpec {
//!     profile: DatasetProfile::Bgl2,
//!     target_bytes: 10_000,
//!     seed: 42,
//! });
//! assert!(ds.text().len() >= 10_000);
//! assert!(ds.lines() > 20);
//! assert!(ds.text().ends_with(b"\n"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod profiles;

pub use gen::{generate, Dataset, DatasetSpec};
pub use profiles::DatasetProfile;
