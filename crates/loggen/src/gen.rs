use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profiles::DatasetProfile;

/// Specification of one synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Which HPC4 profile to imitate.
    pub profile: DatasetProfile,
    /// Generate at least this many bytes of log text.
    pub target_bytes: usize,
    /// RNG seed; identical specs produce identical bytes.
    pub seed: u64,
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    profile: DatasetProfile,
    text: Vec<u8>,
    lines: u64,
}

impl Dataset {
    /// The profile this dataset imitates.
    pub fn profile(&self) -> DatasetProfile {
        self.profile
    }

    /// Dataset name (paper table column).
    pub fn name(&self) -> &'static str {
        self.profile.name()
    }

    /// The raw log text.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Consumes the dataset, returning the text buffer.
    pub fn into_text(self) -> Vec<u8> {
        self.text
    }

    /// Number of lines generated.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Mean line length in bytes (including the newline).
    pub fn mean_line_len(&self) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            self.text.len() as f64 / self.lines as f64
        }
    }
}

/// Pools of recently-used variable-field values. Real logs reuse values
/// heavily — the same client IPs, job ids and PIDs recur across lines — and
/// this reuse is what log-optimized compressors exploit, so the generator
/// must reproduce it (see `DatasetProfile::redundancy`).
struct ValuePools {
    pools: HashMap<&'static str, Vec<String>>,
    reuse: f64,
    pool_size: usize,
}

impl ValuePools {
    fn new(reuse: f64, pool_size: usize) -> Self {
        ValuePools {
            pools: HashMap::new(),
            reuse,
            pool_size,
        }
    }

    fn get(
        &mut self,
        kind: &'static str,
        rng: &mut StdRng,
        fresh: impl Fn(&mut StdRng) -> String,
    ) -> String {
        let reuse = self.reuse;
        let pool_size = self.pool_size;
        let pool = self.pools.entry(kind).or_default();
        if !pool.is_empty() && rng.gen_bool(reuse) {
            // Zipf-ish: prefer the front of the pool.
            let idx = (rng.gen_range(0.0f64..1.0).powi(2) * pool.len() as f64) as usize;
            return pool[idx.min(pool.len() - 1)].clone();
        }
        let v = fresh(rng);
        if pool.len() < pool_size {
            pool.push(v.clone());
        } else {
            let slot = rng.gen_range(0..pool.len());
            pool[slot] = v.clone();
        }
        v
    }
}

/// Generates a dataset per `spec`. Lines carry monotonically increasing
/// timestamps; message templates are drawn with the profile's Zipf-like
/// weights; nodes arrive in bursts from a bounded pool; variable fields
/// reuse pooled values with profile-calibrated probability.
pub fn generate(spec: &DatasetSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let profile = spec.profile;
    let messages = profile.messages();
    let total_weight: u64 = messages.iter().map(|(w, _)| u64::from(*w)).sum();
    let red = profile.redundancy();

    // Fixed node pool for the whole dataset.
    let nodes: Vec<String> = (0..red.node_pool)
        .map(|_| profile.node_name(&mut rng))
        .collect();
    let mut pools = ValuePools::new(red.value_reuse, red.value_pool);

    let mut text = Vec::with_capacity(spec.target_bytes + 256);
    let mut lines = 0u64;
    let mut epoch = profile.start_epoch();
    let mut current_node = nodes[0].clone();

    while text.len() < spec.target_bytes {
        // Bursty arrivals: many lines share a second, occasional jumps.
        if rng.gen_bool(red.epoch_advance) {
            epoch += rng.gen_range(1u64..3);
        }
        // Bursty sources: continue the current node's run or switch.
        if !rng.gen_bool(red.burst_continue) {
            // Zipf-ish hot nodes.
            let idx =
                (rng.gen_range(0.0f64..1.0).powi(red.node_zipf) * nodes.len() as f64) as usize;
            current_node = nodes[idx.min(nodes.len() - 1)].clone();
        }
        let msg = pick_weighted(messages, total_weight, &mut rng);
        let filled = fill_fields(msg, &mut rng, profile, &mut pools);
        let line = profile.format_line(epoch, lines, &current_node, &filled);
        text.extend_from_slice(line.as_bytes());
        lines += 1;
    }

    Dataset {
        profile,
        text,
        lines,
    }
}

fn pick_weighted(
    messages: &'static [(u32, &'static str)],
    total_weight: u64,
    rng: &mut StdRng,
) -> &'static str {
    let mut ticket = rng.gen_range(0..total_weight);
    for (w, m) in messages {
        let w = u64::from(*w);
        if ticket < w {
            return m;
        }
        ticket -= w;
    }
    messages.last().expect("non-empty bank").1
}

/// Replaces `%FIELD%` markers with pooled or fresh values.
fn fill_fields(
    template: &str,
    rng: &mut StdRng,
    profile: DatasetProfile,
    pools: &mut ValuePools,
) -> String {
    let mut out = String::with_capacity(template.len() + 16);
    let mut rest = template;
    while let Some(start) = rest.find('%') {
        out.push_str(&rest[..start]);
        let after = &rest[start + 1..];
        let Some(end) = after.find('%') else {
            out.push('%');
            rest = after;
            continue;
        };
        let field = &after[..end];
        out.push_str(&fill_one(field, rng, profile, pools));
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    out
}

fn fill_one(
    field: &str,
    rng: &mut StdRng,
    profile: DatasetProfile,
    pools: &mut ValuePools,
) -> String {
    match field {
        "NUM" => pools.get("NUM", rng, |r| format!("{:05}", r.gen_range(0..100_000u32))),
        "PID" => pools.get("PID", rng, |r| {
            format!("{:05}", r.gen_range(100..32_768u32))
        }),
        "PORT" => pools.get("PORT", rng, |r| r.gen_range(1024..65_535u32).to_string()),
        "JOB" => pools.get("JOB", rng, |r| {
            format!("{:06}", r.gen_range(1000..999_999u32))
        }),
        "HEX" => pools.get("HEX", rng, |r| format!("{:08x}", r.gen::<u32>())),
        "HEX2" => pools.get("HEX2", rng, |r| format!("{:02x}", r.gen::<u8>())),
        "IP" => pools.get("IP", rng, |r| {
            format!(
                "172.{}.{}.{}",
                r.gen_range(16..32u8),
                r.gen_range(0..256u16),
                r.gen_range(1..255u16)
            )
        }),
        "MAC" => pools.get("MAC", rng, |r| {
            format!(
                "00:11:43:{:02x}:{:02x}:{:02x}",
                r.gen::<u8>(),
                r.gen::<u8>(),
                r.gen::<u8>()
            )
        }),
        "USER" => {
            const USERS: [&str; 8] = [
                "root", "svc-ops", "jsmith", "achen", "build", "mlee", "operator", "hpcadm",
            ];
            USERS[rng.gen_range(0..USERS.len())].to_string()
        }
        "FILE" => {
            const FILES: [&str; 6] = [
                "apps/solver/bin/run.x",
                "scratch/input.dat",
                "home/jobs/batch.sh",
                "proj/climate/model.exe",
                "tmp/checkpoint.077",
                "opt/mpi/launch",
            ];
            FILES[rng.gen_range(0..FILES.len())].to_string()
        }
        "NODESHORT" => profile.node_name(rng).chars().take(9).collect(),
        other => format!("%{other}%"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(profile: DatasetProfile) -> DatasetSpec {
        DatasetSpec {
            profile,
            target_bytes: 50_000,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&spec(DatasetProfile::Spirit2));
        let b = generate(&spec(DatasetProfile::Spirit2));
        assert_eq!(a.text(), b.text());
        assert_eq!(a.lines(), b.lines());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&spec(DatasetProfile::Spirit2));
        let b = generate(&DatasetSpec {
            seed: 8,
            ..spec(DatasetProfile::Spirit2)
        });
        assert_ne!(a.text(), b.text());
    }

    #[test]
    fn reaches_target_size_with_full_lines() {
        for p in DatasetProfile::all() {
            let ds = generate(&spec(p));
            assert!(ds.text().len() >= 50_000);
            assert!(ds.text().len() < 50_000 + 2048, "overshoot bounded");
            assert_eq!(*ds.text().last().unwrap(), b'\n');
            let counted = ds.text().iter().filter(|&&b| b == b'\n').count() as u64;
            assert_eq!(counted, ds.lines());
        }
    }

    #[test]
    fn no_unfilled_markers_remain() {
        for p in DatasetProfile::all() {
            let ds = generate(&spec(p));
            let text = std::str::from_utf8(ds.text()).expect("valid utf8");
            assert!(
                !text.contains('%'),
                "{} contains an unfilled %FIELD% marker",
                p.name()
            );
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let ds = generate(&spec(DatasetProfile::Bgl2));
        let mut last = 0u64;
        for line in std::str::from_utf8(ds.text()).unwrap().lines() {
            let epoch: u64 = line
                .split_ascii_whitespace()
                .nth(1)
                .and_then(|t| t.parse().ok())
                .expect("epoch token");
            assert!(epoch >= last, "timestamps must not go backwards");
            last = epoch;
        }
    }

    #[test]
    fn line_shapes_match_profiles() {
        let bgl = generate(&spec(DatasetProfile::Bgl2));
        assert!(std::str::from_utf8(bgl.text())
            .unwrap()
            .lines()
            .all(|l| l.contains(" RAS ")));
        let tb = generate(&spec(DatasetProfile::Thunderbird));
        assert!(std::str::from_utf8(tb.text())
            .unwrap()
            .lines()
            .all(|l| l.contains(" local@")));
    }

    #[test]
    fn frequent_and_rare_templates_both_appear() {
        let ds = generate(&DatasetSpec {
            profile: DatasetProfile::Liberty2,
            target_bytes: 400_000,
            seed: 3,
        });
        let text = std::str::from_utf8(ds.text()).unwrap();
        let sessions = text.matches("session opened for user root").count();
        let logrotate = text.matches("logrotate: ALERT").count();
        assert!(sessions > logrotate, "zipf head should dominate");
        assert!(logrotate > 0, "tail templates must still occur");
    }

    #[test]
    fn mean_line_len_is_loglike() {
        for p in DatasetProfile::all() {
            let ds = generate(&spec(p));
            let m = ds.mean_line_len();
            assert!(m > 60.0 && m < 250.0, "{}: {m:.1}", p.name());
        }
    }

    #[test]
    fn nodes_arrive_in_bursts_from_a_pool() {
        let ds = generate(&DatasetSpec {
            profile: DatasetProfile::Thunderbird,
            target_bytes: 200_000,
            seed: 4,
        });
        let text = std::str::from_utf8(ds.text()).unwrap();
        let nodes: Vec<&str> = text
            .lines()
            .map(|l| l.split_ascii_whitespace().nth(3).unwrap())
            .collect();
        let distinct: std::collections::HashSet<&&str> = nodes.iter().collect();
        assert!(
            distinct.len() <= 48,
            "node pool bounded: {}",
            distinct.len()
        );
        // Bursts: a decent share of consecutive lines shares the node.
        let same = nodes.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            same as f64 / nodes.len() as f64 > 0.3,
            "bursts expected, got {same}/{}",
            nodes.len()
        );
    }

    #[test]
    fn variable_values_recur() {
        let ds = generate(&DatasetSpec {
            profile: DatasetProfile::Spirit2,
            target_bytes: 300_000,
            seed: 5,
        });
        let text = std::str::from_utf8(ds.text()).unwrap();
        // Collect PIDs of crond lines; the pool should make them repeat.
        let mut pids: HashMap<&str, usize> = HashMap::new();
        for line in text.lines() {
            if let Some(pos) = line.find("crond(pam_unix)[") {
                let rest = &line[pos + 16..];
                if let Some(end) = rest.find(']') {
                    *pids.entry(&rest[..end]).or_default() += 1;
                }
            }
        }
        let max_count = pids.values().copied().max().unwrap_or(0);
        assert!(max_count > 5, "pooled PIDs must recur, max was {max_count}");
    }
}
