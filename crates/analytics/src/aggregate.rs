use std::collections::HashMap;

use mithrilog_filter::FilterPipeline;

/// Per-template line counts from a tagged accelerator pass.
///
/// Pair a multi-template query (templates joined with `OR`, one
/// intersection set each) with [`FilterPipeline::tag_text`]: every line
/// gets the index of the template it satisfied, and this aggregator counts
/// them — log traffic breakdown by message type in a single scan.
#[derive(Debug, Clone, Default)]
pub struct TemplateCounts {
    counts: Vec<u64>,
    unmatched: u64,
    total: u64,
}

impl TemplateCounts {
    /// Creates a counter for `templates` template slots.
    pub fn new(templates: usize) -> Self {
        TemplateCounts {
            counts: vec![0; templates],
            unmatched: 0,
            total: 0,
        }
    }

    /// Tags a whole text buffer with `pipeline` and accumulates counts.
    pub fn scan(pipeline: &FilterPipeline, text: &[u8]) -> Self {
        let mut out = Self::new(pipeline.compiled().set_count());
        for (_, tag) in pipeline.tag_text(text) {
            out.record(tag);
        }
        out
    }

    /// Records one line's tag.
    pub fn record(&mut self, tag: Option<usize>) {
        self.total += 1;
        match tag {
            Some(i) if i < self.counts.len() => self.counts[i] += 1,
            _ => self.unmatched += 1,
        }
    }

    /// Lines matching template `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Lines matching no template.
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// Lines observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Template indices ordered by descending count.
    pub fn ranking(&self) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self.counts.iter().copied().enumerate().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Extracts the Unix-epoch token from an HPC4-format log line (second
/// whitespace-separated field in every profile's line format).
pub fn extract_epoch(line: &str) -> Option<u64> {
    line.split_ascii_whitespace().nth(1)?.parse().ok()
}

/// Event counts over fixed-width time buckets.
#[derive(Debug, Clone)]
pub struct TimeHistogram {
    bucket_secs: u64,
    buckets: HashMap<u64, u64>,
    total: u64,
}

impl TimeHistogram {
    /// Creates a histogram with `bucket_secs`-second buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is zero.
    pub fn new(bucket_secs: u64) -> Self {
        assert!(bucket_secs > 0, "bucket width must be positive");
        TimeHistogram {
            bucket_secs,
            buckets: HashMap::new(),
            total: 0,
        }
    }

    /// Records one event at `epoch`.
    pub fn record_epoch(&mut self, epoch: u64) {
        *self.buckets.entry(epoch / self.bucket_secs).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records every line of a filtered result set that carries an epoch.
    pub fn record_lines<'a, I: IntoIterator<Item = &'a str>>(&mut self, lines: I) {
        for line in lines {
            if let Some(e) = extract_epoch(line) {
                self.record_epoch(e);
            }
        }
    }

    /// Number of non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(bucket_start_epoch, count)` pairs in time order.
    pub fn series(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .map(|(b, c)| (b * self.bucket_secs, *c))
            .collect();
        v.sort_unstable();
        v
    }

    /// Mean events per non-empty bucket.
    pub fn mean_rate(&self) -> f64 {
        if self.buckets.is_empty() {
            0.0
        } else {
            self.total as f64 / self.buckets.len() as f64
        }
    }
}

/// Top-K most frequent tokens in a filtered result set — the "what is this
/// subset of the log about?" exploration primitive.
#[derive(Debug, Clone)]
pub struct TopTokens {
    counts: HashMap<String, u64>,
}

impl TopTokens {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TopTokens {
            counts: HashMap::new(),
        }
    }

    /// Records every token of a line.
    pub fn record_line(&mut self, line: &str) {
        for tok in line.split_ascii_whitespace() {
            *self.counts.entry(tok.to_string()).or_insert(0) += 1;
        }
    }

    /// The `k` most frequent tokens, descending (ties alphabetical).
    pub fn top(&self, k: usize) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.counts.iter().map(|(t, c)| (t.as_str(), *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(k);
        v
    }
}

impl Default for TopTokens {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_query::parse;

    #[test]
    fn template_counts_from_tagged_scan() {
        let q = parse("(RAS AND INFO) OR pbs_mom:").unwrap();
        let p = FilterPipeline::compile(&q).unwrap();
        let text = b"RAS INFO one\npbs_mom: two\nRAS INFO three\nother\n";
        let counts = TemplateCounts::scan(&p, text);
        assert_eq!(counts.count(0), 2);
        assert_eq!(counts.count(1), 1);
        assert_eq!(counts.unmatched(), 1);
        assert_eq!(counts.total(), 4);
        assert_eq!(counts.ranking()[0], (0, 2));
    }

    #[test]
    fn epoch_extraction_matches_hpc4_formats() {
        assert_eq!(
            extract_epoch("- 1117838570 2005.06.03 R02-M1 RAS KERNEL INFO x"),
            Some(1_117_838_570)
        );
        assert_eq!(extract_epoch("nonsense"), None);
        assert_eq!(extract_epoch(""), None);
        assert_eq!(extract_epoch("- notanumber rest"), None);
    }

    #[test]
    fn histogram_buckets_by_width() {
        let mut h = TimeHistogram::new(10);
        for e in [100, 101, 109, 110, 125] {
            h.record_epoch(e);
        }
        assert_eq!(h.bucket_count(), 3);
        assert_eq!(h.series(), vec![(100, 3), (110, 1), (120, 1)]);
        assert!((h.mean_rate() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_records_filtered_lines() {
        let mut h = TimeHistogram::new(60);
        h.record_lines([
            "- 1000 2005.06.03 n RAS x",
            "- 1030 2005.06.03 n RAS y",
            "- 1070 2005.06.03 n RAS z",
            "garbage line",
        ]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bucket_count(), 2);
    }

    #[test]
    fn top_tokens_ranks_by_frequency() {
        let mut t = TopTokens::new();
        t.record_line("a b a c a b");
        t.record_line("b z");
        let top = t.top(2);
        assert_eq!(top, vec![("a", 3), ("b", 3)]);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_bucket_width_panics() {
        TimeHistogram::new(0);
    }
}
