//! Host-side analytics over MithriLog filter output.
//!
//! The paper positions the near-storage filter as a fast *data extraction*
//! stage: "more complex analytical operations such as principal component
//! analysis or clustering can also be implemented to benefit from the fast
//! data extraction capability of MithriLog" (§1), and lists "higher-order
//! log analytics accelerators that process the output of the MithriLog
//! system" as ongoing work (§8). This crate provides the host-software side
//! of that story:
//!
//! * [`TemplateCounts`] — per-template line counts from a tagged multi-
//!   template query (one accelerator pass tags every line with the
//!   intersection set it satisfied);
//! * [`TimeHistogram`] — event counts over time buckets, keyed by the
//!   epoch token the HPC4 line formats carry;
//! * [`RateSpikeDetector`] — a z-score spike detector over the histogram,
//!   the simplest useful instance of the paper's anomaly-detection use
//!   case;
//! * [`join_on`] — a host-side hash join correlating two filtered event
//!   classes on an extracted key (the §8 "join operations");
//! * [`PcaModel`] — PCA anomaly detection over template-count windows, the
//!   Xu-et-al. analysis the paper's §1 names as the canonical consumer of
//!   fast log extraction;
//! * [`Clustering`] — k-means over template mixes, §1's other cited
//!   analysis (Lin et al. log clustering), finding operating modes and
//!   problem-candidate windows.
//!
//! # Example
//!
//! ```
//! use mithrilog_analytics::TimeHistogram;
//!
//! let mut h = TimeHistogram::new(60); // one-minute buckets
//! h.record_epoch(1_117_838_570);
//! h.record_epoch(1_117_838_575);
//! h.record_epoch(1_117_838_700);
//! assert_eq!(h.bucket_count(), 2);
//! assert_eq!(h.total(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod anomaly;
mod cluster;
mod join;
mod pca;

pub use aggregate::{extract_epoch, TemplateCounts, TimeHistogram, TopTokens};
pub use anomaly::{RateSpike, RateSpikeDetector};
pub use cluster::Clustering;
pub use join::{correlate_counts, extract_node, join_on, JoinedPair};
pub use pca::{Component, EventMatrix, PcaModel, WindowAnomaly};
