//! PCA-based anomaly detection over template-count windows — the analysis
//! the paper's introduction points at: "more complex analytical operations
//! such as principal component analysis \[Xu et al., SOSP'09\] or clustering
//! can also be implemented to benefit from the fast data extraction
//! capability of MithriLog" (§1).
//!
//! Following Xu et al., the log is reduced to an *event count matrix*: one
//! row per time window, one column per template, entries = how many lines
//! of that template fell in that window (both produced by one tagged
//! accelerator pass). PCA learns the normal-subspace of row patterns; a
//! window whose residual outside that subspace is large is anomalous —
//! e.g. a template mix that never co-occurs in healthy operation.

/// The event count matrix: `rows[w][t]` = lines of template `t` in window
/// `w`.
#[derive(Debug, Clone)]
pub struct EventMatrix {
    window_secs: u64,
    templates: usize,
    /// Sorted window start epochs, parallel to `rows`.
    window_starts: Vec<u64>,
    rows: Vec<Vec<f64>>,
}

impl EventMatrix {
    /// Creates an empty matrix for `templates` template slots and
    /// `window_secs`-second windows.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` or `templates` is zero.
    pub fn new(window_secs: u64, templates: usize) -> Self {
        assert!(window_secs > 0, "window width must be positive");
        assert!(templates > 0, "need at least one template column");
        EventMatrix {
            window_secs,
            templates,
            window_starts: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Records one event: a line of template `template` at `epoch`.
    /// Windows are created on demand; events may arrive out of order.
    ///
    /// # Panics
    ///
    /// Panics if `template` is out of range.
    pub fn record(&mut self, epoch: u64, template: usize) {
        assert!(
            template < self.templates,
            "template {template} out of range"
        );
        let start = epoch / self.window_secs * self.window_secs;
        let idx = match self.window_starts.binary_search(&start) {
            Ok(i) => i,
            Err(i) => {
                self.window_starts.insert(i, start);
                self.rows.insert(i, vec![0.0; self.templates]);
                i
            }
        };
        self.rows[idx][template] += 1.0;
    }

    /// Number of (non-empty) windows.
    pub fn windows(&self) -> usize {
        self.rows.len()
    }

    /// Number of template columns.
    pub fn templates(&self) -> usize {
        self.templates
    }

    /// Start epoch of window `w`.
    pub fn window_start(&self, w: usize) -> u64 {
        self.window_starts[w]
    }

    /// The raw count row of window `w`.
    pub fn row(&self, w: usize) -> &[f64] {
        &self.rows[w]
    }
}

/// One principal component with its share of the total variance.
#[derive(Debug, Clone)]
pub struct Component {
    /// Unit direction in template space.
    pub direction: Vec<f64>,
    /// Eigenvalue (variance captured along the direction).
    pub variance: f64,
}

/// A fitted PCA anomaly model.
#[derive(Debug, Clone)]
pub struct PcaModel {
    mean: Vec<f64>,
    components: Vec<Component>,
}

/// A window flagged as anomalous.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAnomaly {
    /// Index of the window in the matrix.
    pub window: usize,
    /// Start epoch of the window.
    pub window_start: u64,
    /// Residual norm outside the normal subspace.
    pub residual: f64,
}

impl PcaModel {
    /// Fits `k` principal components to the matrix via mean-centering and
    /// power iteration with deflation (sufficient for the small template
    /// counts of log analytics; no external linear algebra needed).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no windows or `k` is zero.
    pub fn fit(matrix: &EventMatrix, k: usize) -> Self {
        assert!(matrix.windows() > 0, "cannot fit an empty matrix");
        assert!(k > 0, "need at least one component");
        let d = matrix.templates();
        let n = matrix.windows() as f64;
        let mut mean = vec![0.0; d];
        for row in &matrix.rows {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v / n;
            }
        }
        let centered: Vec<Vec<f64>> = matrix
            .rows
            .iter()
            .map(|row| row.iter().zip(&mean).map(|(v, m)| v - m).collect())
            .collect();

        // Covariance-free power iteration: repeatedly apply Xᵀ(Xv).
        let mut components = Vec::new();
        let mut deflated = centered;
        for comp in 0..k.min(d) {
            // Deterministic non-degenerate start vector.
            let mut v: Vec<f64> = (0..d)
                .map(|i| if i % (comp + 2) == 0 { 1.0 } else { 0.5 })
                .collect();
            normalize(&mut v);
            let mut eigen = 0.0;
            for _ in 0..200 {
                let mut next = vec![0.0; d];
                for row in &deflated {
                    let proj: f64 = dot(row, &v);
                    for (n_i, r_i) in next.iter_mut().zip(row) {
                        *n_i += proj * r_i;
                    }
                }
                eigen = norm(&next);
                if eigen < 1e-12 {
                    break;
                }
                for x in &mut next {
                    *x /= eigen;
                }
                let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
                v = next;
                if delta < 1e-10 {
                    break;
                }
            }
            if eigen < 1e-12 {
                break;
            }
            // Deflate: remove the component from every row.
            for row in &mut deflated {
                let proj = dot(row, &v);
                for (r_i, v_i) in row.iter_mut().zip(&v) {
                    *r_i -= proj * v_i;
                }
            }
            components.push(Component {
                direction: v,
                variance: eigen / n,
            });
        }
        PcaModel { mean, components }
    }

    /// The fitted components, strongest first.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Residual norm of one count row outside the normal subspace.
    pub fn residual(&self, row: &[f64]) -> f64 {
        let mut centered: Vec<f64> = row.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        for c in &self.components {
            let proj = dot(&centered, &c.direction);
            for (x, d) in centered.iter_mut().zip(&c.direction) {
                *x -= proj * d;
            }
        }
        norm(&centered)
    }

    /// Flags windows whose residual exceeds `mean + threshold_sds × sd` of
    /// the residual distribution, sorted by descending residual.
    pub fn detect(&self, matrix: &EventMatrix, threshold_sds: f64) -> Vec<WindowAnomaly> {
        let residuals: Vec<f64> = matrix.rows.iter().map(|r| self.residual(r)).collect();
        let n = residuals.len() as f64;
        let mean = residuals.iter().sum::<f64>() / n;
        let var = residuals
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / n;
        let cutoff = mean + threshold_sds * var.sqrt();
        let mut out: Vec<WindowAnomaly> = residuals
            .into_iter()
            .enumerate()
            .filter(|(_, r)| *r > cutoff && var > 1e-12)
            .map(|(w, residual)| WindowAnomaly {
                window: w,
                window_start: matrix.window_start(w),
                residual,
            })
            .collect();
        out.sort_by(|a, b| b.residual.total_cmp(&a.residual));
        out
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn normalize(a: &mut [f64]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corpus where templates 0 and 1 always move together (2:1 ratio)
    /// except in one window where template 1 explodes alone.
    fn matrix_with_anomaly() -> EventMatrix {
        let mut m = EventMatrix::new(60, 2);
        for w in 0..40u64 {
            let base = 10.0 + (w % 5) as f64 * 4.0;
            for _ in 0..(2.0 * base) as u64 {
                m.record(w * 60, 0);
            }
            for _ in 0..base as u64 {
                m.record(w * 60, 1);
            }
        }
        // Anomalous window 40: template 1 without its partner.
        for _ in 0..60 {
            m.record(40 * 60, 1);
        }
        m
    }

    #[test]
    fn matrix_buckets_events() {
        let mut m = EventMatrix::new(10, 3);
        m.record(5, 0);
        m.record(9, 0);
        m.record(10, 2);
        m.record(7, 1);
        assert_eq!(m.windows(), 2);
        assert_eq!(m.row(0), &[2.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 1.0]);
        assert_eq!(m.window_start(1), 10);
    }

    #[test]
    fn out_of_order_events_land_in_sorted_windows() {
        let mut m = EventMatrix::new(10, 1);
        m.record(100, 0);
        m.record(5, 0);
        m.record(55, 0);
        let starts: Vec<u64> = (0..m.windows()).map(|w| m.window_start(w)).collect();
        assert_eq!(starts, vec![0, 50, 100]);
    }

    #[test]
    fn first_component_captures_the_correlated_direction() {
        // Clean correlated traffic (no outlier window): counts move along
        // (2, 1)/√5, so the first component's ratio must be ≈2.
        let mut m = EventMatrix::new(60, 2);
        for w in 0..40u64 {
            let base = 10.0 + (w % 5) as f64 * 4.0;
            for _ in 0..(2.0 * base) as u64 {
                m.record(w * 60, 0);
            }
            for _ in 0..base as u64 {
                m.record(w * 60, 1);
            }
        }
        let model = PcaModel::fit(&m, 1);
        let c = &model.components()[0];
        let ratio = (c.direction[0] / c.direction[1]).abs();
        assert!((ratio - 2.0).abs() < 0.1, "direction ratio {ratio}");
        assert!(c.variance > 0.0);
    }

    #[test]
    fn anomalous_window_has_the_top_residual() {
        let m = matrix_with_anomaly();
        let model = PcaModel::fit(&m, 1);
        let anomalies = model.detect(&m, 3.0);
        assert!(
            !anomalies.is_empty(),
            "the broken-ratio window must be flagged"
        );
        assert_eq!(anomalies[0].window, 40);
        assert_eq!(anomalies[0].window_start, 2400);
    }

    #[test]
    fn healthy_traffic_yields_no_anomalies() {
        let mut m = EventMatrix::new(60, 2);
        for w in 0..30u64 {
            for _ in 0..20 {
                m.record(w * 60, 0);
            }
            for _ in 0..10 {
                m.record(w * 60, 1);
            }
        }
        let model = PcaModel::fit(&m, 1);
        assert!(model.detect(&m, 3.0).is_empty());
    }

    #[test]
    fn residual_is_zero_inside_the_subspace() {
        let m = matrix_with_anomaly();
        let model = PcaModel::fit(&m, 2); // full rank for 2 templates
                                          // With as many components as dimensions, residuals vanish.
        for w in 0..m.windows() {
            assert!(model.residual(m.row(w)) < 1e-6);
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let m = matrix_with_anomaly();
        let model = PcaModel::fit(&m, 2);
        let cs = model.components();
        for c in cs {
            assert!((norm(&c.direction) - 1.0).abs() < 1e-6);
        }
        if cs.len() == 2 {
            assert!(dot(&cs[0].direction, &cs[1].direction).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "cannot fit an empty matrix")]
    fn empty_matrix_panics() {
        let m = EventMatrix::new(60, 2);
        PcaModel::fit(&m, 1);
    }
}
