//! Host-side join over filter outputs — the "join operations" the paper
//! lists among the higher-order analytics it is building on top of
//! MithriLog's fast data extraction (§8).
//!
//! The pattern: run two cheap accelerator queries to extract two event
//! classes, then correlate them in host memory on an extracted key (node
//! name, job id, user, …). A hash join suffices because the filter has
//! already shrunk both sides by orders of magnitude.

use std::collections::HashMap;

/// A pair of lines joined on a common key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinedPair<'a> {
    /// The join key both lines share.
    pub key: String,
    /// The line from the left (build) side.
    pub left: &'a str,
    /// The line from the right (probe) side.
    pub right: &'a str,
}

/// Hash-joins two filtered result sets on a key extracted from each line.
///
/// `key_of` returns the join key for a line, or `None` to drop it (lines
/// without the field). The left side is built into a hash table; the right
/// side probes it, so put the smaller set on the left. Output order follows
/// the right side, then left insertion order within a key.
///
/// # Example
///
/// ```
/// use mithrilog_analytics::join_on;
///
/// let starts = ["node-1 job started", "node-2 job started"];
/// let fails = ["node-2 job FAILED", "node-3 job FAILED"];
/// let node = |l: &str| l.split_whitespace().next().map(str::to_string);
/// let pairs = join_on(&starts, &fails, node);
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].key, "node-2");
/// ```
pub fn join_on<'a, L, R, K>(left: &'a [L], right: &'a [R], key_of: K) -> Vec<JoinedPair<'a>>
where
    L: AsRef<str>,
    R: AsRef<str>,
    K: Fn(&str) -> Option<String>,
{
    let mut build: HashMap<String, Vec<&'a str>> = HashMap::new();
    for l in left {
        let l = l.as_ref();
        if let Some(k) = key_of(l) {
            build.entry(k).or_default().push(l);
        }
    }
    let mut out = Vec::new();
    for r in right {
        let r = r.as_ref();
        let Some(k) = key_of(r) else { continue };
        if let Some(ls) = build.get(k.as_str()) {
            for l in ls {
                out.push(JoinedPair {
                    key: k.clone(),
                    left: l,
                    right: r,
                });
            }
        }
    }
    out
}

/// Extracts the source-node token of an HPC4-format line (4th whitespace
/// field in every profile's line format) — the most common join key.
pub fn extract_node(line: &str) -> Option<String> {
    line.split_ascii_whitespace().nth(3).map(str::to_string)
}

/// Counts joined pairs per key — "which nodes had both event classes?".
pub fn correlate_counts(pairs: &[JoinedPair<'_>]) -> Vec<(String, usize)> {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for p in pairs {
        *counts.entry(p.key.as_str()).or_default() += 1;
    }
    let mut v: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(k, c)| (k.to_string(), c))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_join_matches_shared_keys_only() {
        let left = ["a x1", "b x2", "a x3"];
        let right = ["a y1", "c y2"];
        let key = |l: &str| l.split_whitespace().next().map(str::to_string);
        let pairs = join_on(&left, &right, key);
        assert_eq!(pairs.len(), 2, "a x1/a y1 and a x3/a y1");
        assert!(pairs.iter().all(|p| p.key == "a"));
        assert_eq!(pairs[0].left, "a x1");
        assert_eq!(pairs[1].left, "a x3");
    }

    #[test]
    fn keyless_lines_are_dropped() {
        let left = ["has-key v", ""];
        let right = ["has-key w"];
        let key = |l: &str| l.split_whitespace().next().map(str::to_string);
        let pairs = join_on(&left, &right, key);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn empty_sides_yield_empty_join() {
        let key = |l: &str| Some(l.to_string());
        assert!(join_on::<&str, &str, _>(&[], &["x"], key).is_empty());
        let key = |l: &str| Some(l.to_string());
        assert!(join_on::<&str, &str, _>(&["x"], &[], key).is_empty());
    }

    #[test]
    fn node_extraction_matches_hpc4_layout() {
        let line = "- 1104566461 2005.01.01 sn042 Jan 1 12:01:01 sn042/sn042 kernel: ok";
        assert_eq!(extract_node(line), Some("sn042".to_string()));
        assert_eq!(extract_node("too short"), None);
    }

    #[test]
    fn correlate_counts_ranks_keys() {
        let left = ["n1 a", "n2 a", "n2 b"];
        let right = ["n1 z", "n2 z"];
        let key = |l: &str| l.split_whitespace().next().map(str::to_string);
        let pairs = join_on(&left, &right, key);
        let counts = correlate_counts(&pairs);
        assert_eq!(counts[0], ("n2".to_string(), 2));
        assert_eq!(counts[1], ("n1".to_string(), 1));
    }
}
