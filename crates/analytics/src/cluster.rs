//! K-means clustering of template-count windows — the "clustering" analysis
//! the paper's §1 cites alongside PCA (Lin et al., "Log clustering based
//! problem identification for online service systems") as a consumer of
//! MithriLog's fast extraction.
//!
//! Windows with similar template mixes cluster together; a healthy system
//! produces a few large clusters (its operating modes), and windows landing
//! far from every centroid — or in tiny clusters — are problem candidates.

use crate::pca::EventMatrix;

/// Result of clustering the windows of an [`EventMatrix`].
#[derive(Debug, Clone)]
pub struct Clustering {
    centroids: Vec<Vec<f64>>,
    assignment: Vec<usize>,
    distances: Vec<f64>,
}

impl Clustering {
    /// Clusters the matrix rows into `k` groups with Lloyd's algorithm and
    /// deterministic farthest-point initialization (no RNG, so results are
    /// reproducible).
    ///
    /// Rows are L1-normalized first: clustering is over template *mix*, not
    /// volume, so a quiet minute and a busy minute of the same behaviour
    /// land together.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or `k` is zero.
    pub fn fit(matrix: &EventMatrix, k: usize) -> Self {
        assert!(matrix.windows() > 0, "cannot cluster an empty matrix");
        assert!(k > 0, "need at least one cluster");
        let rows: Vec<Vec<f64>> = (0..matrix.windows())
            .map(|w| normalize_l1(matrix.row(w)))
            .collect();
        let k = k.min(rows.len());

        // Farthest-point init: start from the row nearest the global mean,
        // then repeatedly take the row farthest from all chosen centroids.
        let d = rows[0].len();
        let mean: Vec<f64> = (0..d)
            .map(|i| rows.iter().map(|r| r[i]).sum::<f64>() / rows.len() as f64)
            .collect();
        let first = argmin(&rows, |r| dist2(r, &mean));
        let mut centroids = vec![rows[first].clone()];
        while centroids.len() < k {
            let far = argmin(&rows, |r| {
                -centroids
                    .iter()
                    .map(|c| dist2(r, c))
                    .fold(f64::INFINITY, f64::min)
            });
            centroids.push(rows[far].clone());
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; rows.len()];
        for _ in 0..100 {
            let mut changed = false;
            for (i, r) in rows.iter().enumerate() {
                let best = argmin(&centroids, |c| dist2(r, c));
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            let mut sums = vec![vec![0.0; d]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (r, &a) in rows.iter().zip(&assignment) {
                counts[a] += 1;
                for (s, v) in sums[a].iter_mut().zip(r) {
                    *s += v;
                }
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    *c = sum.iter().map(|s| s / *count as f64).collect();
                }
            }
            if !changed {
                break;
            }
        }
        let distances = rows
            .iter()
            .zip(&assignment)
            .map(|(r, &a)| dist2(r, &centroids[a]).sqrt())
            .collect();
        Clustering {
            centroids,
            assignment,
            distances,
        }
    }

    /// The cluster index of window `w`.
    pub fn cluster_of(&self, w: usize) -> usize {
        self.assignment[w]
    }

    /// The fitted centroids (over L1-normalized template mixes).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Windows per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignment {
            sizes[a] += 1;
        }
        sizes
    }

    /// Distance of window `w` to its centroid.
    pub fn distance_of(&self, w: usize) -> f64 {
        self.distances[w]
    }

    /// Windows in clusters holding at most `max_size` members, plus windows
    /// whose centroid distance exceeds `distance_cut` — the problem
    /// candidates, ordered by descending distance.
    pub fn outliers(&self, max_size: usize, distance_cut: f64) -> Vec<usize> {
        let sizes = self.sizes();
        let mut out: Vec<usize> = (0..self.assignment.len())
            .filter(|&w| sizes[self.assignment[w]] <= max_size || self.distances[w] > distance_cut)
            .collect();
        out.sort_by(|&a, &b| self.distances[b].total_cmp(&self.distances[a]));
        out
    }
}

fn normalize_l1(row: &[f64]) -> Vec<f64> {
    let total: f64 = row.iter().sum();
    if total == 0.0 {
        row.to_vec()
    } else {
        row.iter().map(|v| v / total).collect()
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn argmin<T>(items: &[T], score: impl Fn(&T) -> f64) -> usize {
    let mut best = 0;
    let mut best_score = f64::INFINITY;
    for (i, it) in items.iter().enumerate() {
        let s = score(it);
        if s < best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two operating modes plus one oddball window.
    fn matrix_two_modes() -> EventMatrix {
        let mut m = EventMatrix::new(60, 3);
        for w in 0..10u64 {
            // Mode A: mostly template 0. Scale varies — mix is constant.
            let scale = 1 + w % 3;
            for _ in 0..8 * scale {
                m.record(w * 60, 0);
            }
            for _ in 0..2 * scale {
                m.record(w * 60, 1);
            }
        }
        for w in 10..20u64 {
            // Mode B: mostly template 1.
            for _ in 0..2 {
                m.record(w * 60, 0);
            }
            for _ in 0..8 {
                m.record(w * 60, 1);
            }
        }
        // Oddball window 20: pure template 2, never seen otherwise.
        for _ in 0..10 {
            m.record(20 * 60, 2);
        }
        m
    }

    #[test]
    fn two_modes_separate_cleanly() {
        let m = matrix_two_modes();
        let c = Clustering::fit(&m, 3);
        // All mode-A windows share a cluster, all mode-B windows share a
        // different one.
        let a = c.cluster_of(0);
        for w in 0..10 {
            assert_eq!(c.cluster_of(w), a, "window {w}");
        }
        let b = c.cluster_of(10);
        assert_ne!(a, b);
        for w in 10..20 {
            assert_eq!(c.cluster_of(w), b, "window {w}");
        }
        assert_ne!(c.cluster_of(20), a);
        assert_ne!(c.cluster_of(20), b);
    }

    #[test]
    fn volume_does_not_split_clusters() {
        // Mode-A windows differ 3x in volume but share the mix; L1
        // normalization must keep them together (checked above) AND keep
        // their centroid distance tiny.
        let m = matrix_two_modes();
        let c = Clustering::fit(&m, 3);
        for w in 0..10 {
            assert!(c.distance_of(w) < 0.05, "window {w}: {}", c.distance_of(w));
        }
    }

    #[test]
    fn oddball_window_is_an_outlier() {
        let m = matrix_two_modes();
        let c = Clustering::fit(&m, 3);
        let outliers = c.outliers(1, f64::INFINITY);
        assert_eq!(outliers, vec![20]);
    }

    #[test]
    fn sizes_partition_the_windows() {
        let m = matrix_two_modes();
        let c = Clustering::fit(&m, 3);
        assert_eq!(c.sizes().iter().sum::<usize>(), m.windows());
    }

    #[test]
    fn k_larger_than_windows_is_clamped() {
        let mut m = EventMatrix::new(60, 2);
        m.record(0, 0);
        m.record(60, 1);
        let c = Clustering::fit(&m, 10);
        assert!(c.centroids().len() <= 2);
    }

    #[test]
    #[should_panic(expected = "cannot cluster an empty matrix")]
    fn empty_matrix_panics() {
        let m = EventMatrix::new(60, 2);
        Clustering::fit(&m, 2);
    }
}
