use crate::aggregate::TimeHistogram;

/// A detected rate spike: a time bucket whose event count deviates from the
/// corpus mean by more than the configured number of standard deviations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSpike {
    /// Start epoch of the spiking bucket.
    pub bucket_start: u64,
    /// Events in the bucket.
    pub count: u64,
    /// Z-score of the bucket against the histogram's distribution.
    pub z_score: f64,
}

/// Z-score spike detection over a [`TimeHistogram`] — the minimal useful
/// instance of the paper's "detecting abnormal behavior and security
/// issues" motivation (§1): filter the log down to the event class of
/// interest at accelerator speed, then flag bursts in the survivors.
#[derive(Debug, Clone, Copy)]
pub struct RateSpikeDetector {
    /// Z-score threshold above which a bucket is a spike.
    pub threshold: f64,
}

impl RateSpikeDetector {
    /// Creates a detector with the given z-score threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        RateSpikeDetector { threshold }
    }

    /// Finds spiking buckets, ordered by time.
    ///
    /// Uses the population mean/stddev over *non-empty* buckets; histograms
    /// with fewer than 3 buckets or zero variance yield no spikes (nothing
    /// to deviate from).
    pub fn detect(&self, histogram: &TimeHistogram) -> Vec<RateSpike> {
        let series = histogram.series();
        if series.len() < 3 {
            return Vec::new();
        }
        let n = series.len() as f64;
        let mean = series.iter().map(|(_, c)| *c as f64).sum::<f64>() / n;
        let var = series
            .iter()
            .map(|(_, c)| {
                let d = *c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let sd = var.sqrt();
        if sd == 0.0 {
            return Vec::new();
        }
        series
            .into_iter()
            .filter_map(|(start, count)| {
                let z = (count as f64 - mean) / sd;
                (z > self.threshold).then_some(RateSpike {
                    bucket_start: start,
                    count,
                    z_score: z,
                })
            })
            .collect()
    }
}

impl Default for RateSpikeDetector {
    fn default() -> Self {
        RateSpikeDetector::new(3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram_with(counts: &[(u64, u64)]) -> TimeHistogram {
        let mut h = TimeHistogram::new(60);
        for &(bucket, count) in counts {
            for i in 0..count {
                h.record_epoch(bucket * 60 + i % 60);
            }
        }
        h
    }

    #[test]
    fn flat_traffic_has_no_spikes() {
        let h = histogram_with(&[(0, 10), (1, 10), (2, 10), (3, 10)]);
        assert!(RateSpikeDetector::default().detect(&h).is_empty());
    }

    #[test]
    fn burst_is_detected() {
        let mut counts: Vec<(u64, u64)> = (0..30).map(|b| (b, 10)).collect();
        counts.push((30, 500));
        let h = histogram_with(&counts);
        let spikes = RateSpikeDetector::default().detect(&h);
        assert_eq!(spikes.len(), 1);
        assert_eq!(spikes[0].bucket_start, 30 * 60);
        assert_eq!(spikes[0].count, 500);
        assert!(spikes[0].z_score > 3.0);
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let mut counts: Vec<(u64, u64)> = (0..20).map(|b| (b, 10)).collect();
        counts.push((20, 25));
        let h = histogram_with(&counts);
        let strict = RateSpikeDetector::new(5.0).detect(&h);
        let loose = RateSpikeDetector::new(1.5).detect(&h);
        assert!(strict.len() <= loose.len());
        assert!(!loose.is_empty());
    }

    #[test]
    fn tiny_histograms_yield_nothing() {
        let h = histogram_with(&[(0, 5), (1, 100)]);
        assert!(RateSpikeDetector::default().detect(&h).is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn non_positive_threshold_panics() {
        RateSpikeDetector::new(0.0);
    }
}
