//! CRC32 (IEEE 802.3) page checksums.
//!
//! The simulated device keeps a checksum per page in a sidecar, modeling the
//! out-of-band (spare) area real flash controllers use for ECC metadata. A
//! local implementation keeps the workspace dependency-free; the polynomial
//! and bit order match zlib's `crc32`, so values are comparable to external
//! tooling.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Incremental CRC32 hasher, for checksumming a page without materialising
/// its zero padding.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Feeds `n` zero bytes into the checksum (page padding).
    pub fn update_zeros(&mut self, n: usize) {
        let mut crc = self.state;
        for _ in 0..n {
            crc = (crc >> 8) ^ TABLE[(crc & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes, returning the checksum.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

/// CRC32 of `data` zero-padded to `padded_len` bytes — the checksum of the
/// full page a [`PageStore`](crate::PageStore) persists for a short write.
pub fn crc32_padded(data: &[u8], padded_len: usize) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.update_zeros(padded_len.saturating_sub(data.len()));
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32/IEEE check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"near-storage log analytics";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn padded_matches_materialised_padding() {
        let data = b"short page";
        let mut full = data.to_vec();
        full.resize(4096, 0);
        assert_eq!(crc32_padded(data, 4096), crc32(&full));
        // Already-full pages are unchanged.
        assert_eq!(crc32_padded(data, data.len()), crc32(data));
        assert_eq!(
            crc32_padded(data, 3),
            crc32(data),
            "padded_len below data len is a no-op"
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let page = vec![0xA5u8; 4096];
        let base = crc32(&page);
        for bit in [0usize, 1, 7, 4095 * 8, 4095 * 8 + 7, 2048 * 8 + 3] {
            let mut flipped = page.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&flipped), base, "flip of bit {bit} undetected");
        }
    }
}
