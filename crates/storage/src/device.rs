use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::Bytes;
use parking_lot::Mutex;

use std::collections::BTreeSet;

use crate::crc::{crc32, crc32_padded};
use crate::error::{ConfigError, StorageError};
use crate::perf::{CostLedger, DevicePerfModel};
use crate::superblock::Superblock;

/// Identifier of one fixed-size page on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// The raw page number.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A page-granular storage backend.
///
/// Writes shorter than a page are zero-padded; the page size is fixed at
/// construction. Implementations must be usable from `&self` for reads so a
/// query path can run while holding shared references.
pub trait PageStore: Send + Sync {
    /// Page size in bytes.
    fn page_bytes(&self) -> usize;

    /// Pages currently allocated.
    fn page_count(&self) -> u64;

    /// Reads page `id` in full.
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfRange`] if `id` is unallocated; I/O errors for
    /// file-backed stores.
    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError>;

    /// Appends `data` as a new page (zero-padded), returning its id.
    ///
    /// # Errors
    ///
    /// [`StorageError::Oversized`] if `data` exceeds one page; I/O errors
    /// for file-backed stores.
    fn append_page(&mut self, data: &[u8]) -> Result<PageId, StorageError>;

    /// Overwrites an existing page (used by index snapshots).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PageStore::read_page`] and
    /// [`PageStore::append_page`].
    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError>;

    /// Durability barrier: every write issued before this call is persisted
    /// before any write issued after it. [`FileStore`] maps this to
    /// `File::sync_all`; [`MemStore`] is a no-op (RAM is its durable
    /// medium); crash-injection wrappers use it as the flush point of their
    /// simulated volatile write cache.
    ///
    /// # Errors
    ///
    /// I/O errors for file-backed stores; [`StorageError::Crashed`] from
    /// crash-injection wrappers.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Discards every page with id ≥ `pages`, shrinking the extent. A
    /// `pages` at or beyond the current extent is a no-op. Used by recovery
    /// to drop the uncommitted tail after a crash.
    ///
    /// # Errors
    ///
    /// I/O errors for file-backed stores.
    fn truncate(&mut self, pages: u64) -> Result<(), StorageError>;
}

/// In-memory page store: the default functional backend.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    pages: Vec<Bytes>,
    page_bytes: usize,
}

impl MemStore {
    /// Creates an empty store with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn new(page_bytes: usize) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        MemStore {
            pages: Vec::new(),
            page_bytes,
        }
    }

    fn pad(&self, data: &[u8]) -> Result<Bytes, StorageError> {
        if data.len() > self.page_bytes {
            return Err(StorageError::Oversized {
                got: data.len(),
                page_bytes: self.page_bytes,
            });
        }
        let mut buf = vec![0u8; self.page_bytes];
        buf[..data.len()].copy_from_slice(data);
        Ok(Bytes::from(buf))
    }
}

impl PageStore for MemStore {
    fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError> {
        self.pages
            .get(id.0 as usize)
            .cloned()
            .ok_or(StorageError::OutOfRange {
                page: id.0,
                extent: self.pages.len() as u64,
            })
    }

    fn append_page(&mut self, data: &[u8]) -> Result<PageId, StorageError> {
        let page = self.pad(data)?;
        self.pages.push(page);
        Ok(PageId(self.pages.len() as u64 - 1))
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        if id.0 as usize >= self.pages.len() {
            return Err(StorageError::OutOfRange {
                page: id.0,
                extent: self.pages.len() as u64,
            });
        }
        let page = self.pad(data)?;
        self.pages[id.0 as usize] = page;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn truncate(&mut self, pages: u64) -> Result<(), StorageError> {
        if (pages as usize) < self.pages.len() {
            self.pages.truncate(pages as usize);
        }
        Ok(())
    }
}

/// File-backed page store for corpora larger than RAM.
#[derive(Debug)]
pub struct FileStore {
    file: Mutex<File>,
    page_bytes: usize,
    page_count: u64,
}

impl FileStore {
    /// Creates (truncating) a file-backed store at `path`.
    ///
    /// Refuses to truncate a file that already carries a valid MithriLog
    /// superblock — an existing store must be opened with
    /// [`FileStore::open`] or deleted explicitly first.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidSuperblock`] if `path` holds a formatted
    /// store; otherwise propagates file creation errors.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn create(path: &Path, page_bytes: usize) -> Result<Self, StorageError> {
        assert!(page_bytes > 0, "page size must be positive");
        if let Ok(mut existing) = File::open(path) {
            if let Some((sb, _)) = Self::probe_superblock(&mut existing) {
                return Err(StorageError::InvalidSuperblock(format!(
                    "refusing to truncate {}: it holds a formatted store \
                     (sequence {}, {} committed pages); open it with \
                     FileStore::open or delete it first",
                    path.display(),
                    sb.sequence,
                    sb.committed_pages
                )));
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore {
            file: Mutex::new(file),
            page_bytes,
            page_count: 0,
        })
    }

    /// Opens an existing formatted store at `path`, discovering the page
    /// size from the superblock instead of trusting the caller.
    ///
    /// Either superblock slot may be torn (a crash during a superblock flip
    /// is survivable by design), so slot 0 at offset 0 is tried first and
    /// then slot 1 is probed at every supported power-of-two page size. A
    /// trailing partial page (torn tail append) is excluded from the extent.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidSuperblock`] if no slot validates; I/O errors
    /// from opening the file.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut file = file;
        let (_, page_bytes) = Self::probe_superblock(&mut file).ok_or_else(|| {
            StorageError::InvalidSuperblock(format!(
                "{}: no valid superblock in either slot",
                path.display()
            ))
        })?;
        let len = file.metadata()?.len();
        let page_count = len / page_bytes as u64;
        Ok(FileStore {
            file: Mutex::new(file),
            page_bytes,
            page_count,
        })
    }

    /// Tries to find a valid superblock in `file`: slot 0 at offset 0, then
    /// slot 1 at offset `p` for each supported page size `p`. Returns the
    /// decoded superblock and the store's page size.
    fn probe_superblock(file: &mut File) -> Option<(Superblock, usize)> {
        let mut read_at = |offset: u64| -> Option<Superblock> {
            let mut buf = [0u8; Superblock::HEADER_BYTES];
            file.seek(SeekFrom::Start(offset)).ok()?;
            file.read_exact(&mut buf).ok()?;
            Superblock::decode(&buf).ok()
        };
        if let Some(sb) = read_at(0) {
            let pb = sb.page_bytes as usize;
            return Some((sb, pb));
        }
        for &pb in Superblock::CANDIDATE_PAGE_SIZES {
            if let Some(sb) = read_at(pb as u64) {
                if sb.page_bytes as usize == pb {
                    return Some((sb, pb));
                }
            }
        }
        None
    }
}

impl PageStore for FileStore {
    fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    fn page_count(&self) -> u64 {
        self.page_count
    }

    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError> {
        if id.0 >= self.page_count {
            return Err(StorageError::OutOfRange {
                page: id.0,
                extent: self.page_count,
            });
        }
        let mut buf = vec![0u8; self.page_bytes];
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 * self.page_bytes as u64))?;
        file.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn append_page(&mut self, data: &[u8]) -> Result<PageId, StorageError> {
        if data.len() > self.page_bytes {
            return Err(StorageError::Oversized {
                got: data.len(),
                page_bytes: self.page_bytes,
            });
        }
        let mut buf = vec![0u8; self.page_bytes];
        buf[..data.len()].copy_from_slice(data);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(self.page_count * self.page_bytes as u64))?;
        file.write_all(&buf)?;
        let id = PageId(self.page_count);
        self.page_count += 1;
        Ok(id)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        if id.0 >= self.page_count {
            return Err(StorageError::OutOfRange {
                page: id.0,
                extent: self.page_count,
            });
        }
        if data.len() > self.page_bytes {
            return Err(StorageError::Oversized {
                got: data.len(),
                page_bytes: self.page_bytes,
            });
        }
        let mut buf = vec![0u8; self.page_bytes];
        buf[..data.len()].copy_from_slice(data);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 * self.page_bytes as u64))?;
        file.write_all(&buf)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file.lock().sync_all()?;
        Ok(())
    }

    fn truncate(&mut self, pages: u64) -> Result<(), StorageError> {
        if pages < self.page_count {
            self.file.lock().set_len(pages * self.page_bytes as u64)?;
            self.page_count = pages;
        }
        Ok(())
    }
}

/// How the device handles transient read failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total read attempts per page, including the first. Must be ≥ 1.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1 }
    }

    /// Checks the policy's invariants: at least one read attempt.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when `max_attempts` is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_attempts < 1 {
            return Err(ConfigError::new(
                "retry policy must allow at least one read attempt (max_attempts >= 1)",
            ));
        }
        Ok(())
    }
}

impl Default for RetryPolicy {
    /// Real controllers retry a handful of times with shifted read voltages
    /// before declaring a page unreadable; three attempts models that.
    fn default() -> Self {
        RetryPolicy { max_attempts: 3 }
    }
}

/// One corrupt page found by [`SimSsd::scrub`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptPage {
    /// The corrupt page.
    pub page: u64,
    /// Checksum recorded at write time.
    pub expected: u32,
    /// Checksum of the data read back.
    pub got: u32,
}

/// Result of an integrity scan ([`SimSsd::scrub`], [`SimSsd::scrub_slice`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Pages examined (the scanned extent, including quarantine skips).
    pub pages_checked: u64,
    /// Pages whose checksum did not match.
    pub corrupt: Vec<CorruptPage>,
    /// Pages that stayed unreadable after exhausting read retries.
    pub unreadable: Vec<u64>,
    /// Pages with no recorded checksum (written behind the device's back);
    /// their integrity cannot be judged.
    pub unverified: Vec<u64>,
    /// Transient read retries spent during the scan.
    pub retries: u64,
    /// Pages this scan newly added to the quarantine (every corrupt or
    /// retry-exhausted page), sorted.
    pub quarantined: Vec<u64>,
    /// Pages skipped because they were already quarantined by an earlier
    /// scan; no flash access was paid for them.
    pub already_quarantined: u64,
    /// Pruning-bitmap sidecars dropped because they failed verification
    /// (bad CRC, undecodable, or wrong geometry). The device itself never
    /// sets this; higher layers that scrub their sidecars fold it in. A
    /// dropped sidecar costs performance (plans fall back to conservative
    /// page sets), never correctness.
    pub bitmaps_dropped: u64,
}

impl ScrubReport {
    /// Whether every checked page verified clean and nothing sits in
    /// quarantine.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.unreadable.is_empty() && self.already_quarantined == 0
    }

    /// Folds another slice's findings into this report (used to aggregate
    /// the bounded slices of an online scrub into one pass-level report).
    pub fn merge(&mut self, other: &ScrubReport) {
        self.pages_checked += other.pages_checked;
        self.corrupt.extend_from_slice(&other.corrupt);
        self.unreadable.extend_from_slice(&other.unreadable);
        self.unverified.extend_from_slice(&other.unverified);
        self.retries += other.retries;
        self.quarantined.extend_from_slice(&other.quarantined);
        self.already_quarantined += other.already_quarantined;
        self.bitmaps_dropped += other.bitmaps_dropped;
    }
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scrubbed {} pages: {} corrupt, {} unreadable, {} unverified, \
             {} retries, {} quarantined",
            self.pages_checked,
            self.corrupt.len(),
            self.unreadable.len(),
            self.unverified.len(),
            self.retries,
            self.quarantined.len()
        )
    }
}

/// Outcome of one bounded scrub slice ([`SimSsd::scrub_slice`]): the
/// findings plus the cursor an online scrub lane resumes from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubSlice {
    /// Integrity findings for the pages in this slice.
    pub report: ScrubReport,
    /// The page id the next slice should start from.
    pub next: u64,
    /// Whether this slice reached the end of the device — the pass is
    /// complete and `next` has wrapped to page 0.
    pub complete: bool,
}

/// A simulated SSD: a [`PageStore`] plus a [`DevicePerfModel`] and a
/// [`CostLedger`] recording every access for modeled-time reporting.
///
/// The device also keeps a per-page CRC32 sidecar — modeling the out-of-band
/// area flash controllers use for integrity metadata — and verifies it on
/// every read, surfacing silent corruption as [`StorageError::Corrupt`].
/// Transient read failures are retried per the [`RetryPolicy`], with each
/// re-read charged to the ledger.
#[derive(Debug)]
pub struct SimSsd<S> {
    store: S,
    model: DevicePerfModel,
    ledger: CostLedger,
    crc: Vec<Option<u32>>,
    retry: RetryPolicy,
    /// Pages a scrub found corrupt or unreadable: reads fail up front with
    /// [`StorageError::Quarantined`] — no flash access, no retries — until
    /// the page is rewritten through the device.
    quarantine: BTreeSet<u64>,
}

impl<S: PageStore> SimSsd<S> {
    /// Wraps a store with a performance model.
    ///
    /// Pages already present in `store` have no recorded checksum and read
    /// unverified until rewritten through the device.
    pub fn new(store: S, model: DevicePerfModel) -> Self {
        let crc = vec![None; usize::try_from(store.page_count()).unwrap_or(usize::MAX)];
        SimSsd {
            store,
            model,
            ledger: CostLedger::default(),
            crc,
            retry: RetryPolicy::default(),
            quarantine: BTreeSet::new(),
        }
    }

    /// Replaces the transient-read retry policy.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the policy fails [`RetryPolicy::validate`]; the
    /// previous policy stays in effect.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) -> Result<(), ConfigError> {
        retry.validate()?;
        self.retry = retry;
        Ok(())
    }

    /// The transient-read retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The performance model in use.
    pub fn model(&self) -> &DevicePerfModel {
        &self.model
    }

    /// Access counters accumulated so far.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Resets the access counters.
    pub fn clear_ledger(&mut self) {
        self.ledger.clear();
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the underlying store.
    ///
    /// Writes made here bypass the checksum sidecar — they model corruption
    /// happening behind the controller's back, and a later [`SimSsd::read`]
    /// of an affected page reports [`StorageError::Corrupt`]. Intended for
    /// fault drills and tests.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.store.page_bytes()
    }

    /// Pages allocated.
    pub fn page_count(&self) -> u64 {
        self.store.page_count()
    }

    /// Appends a page.
    ///
    /// # Errors
    ///
    /// See [`PageStore::append_page`].
    pub fn append(&mut self, data: &[u8]) -> Result<PageId, StorageError> {
        let checksum = crc32_padded(data, self.store.page_bytes());
        let id = self.store.append_page(data)?;
        self.record_crc(id, checksum);
        self.ledger.pages_written += 1;
        self.ledger.bytes_written += data.len() as u64;
        Ok(id)
    }

    /// Overwrites a page.
    ///
    /// # Errors
    ///
    /// See [`PageStore::write_page`].
    pub fn write(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        let checksum = crc32_padded(data, self.store.page_bytes());
        self.store.write_page(id, data)?;
        self.record_crc(id, checksum);
        self.ledger.pages_written += 1;
        self.ledger.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Reads a page as part of a bandwidth-bound batch, verifying its
    /// checksum and retrying transient failures per the [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// See [`PageStore::read_page`]; additionally [`StorageError::Corrupt`]
    /// if the page fails verification, or [`StorageError::TransientRead`]
    /// if retries are exhausted.
    pub fn read(&mut self, id: PageId) -> Result<Bytes, StorageError> {
        self.read_with(id, false)
    }

    /// Reads a page as one step of a dependent chain (latency-exposed, e.g.
    /// linked-list traversal in the inverted index).
    ///
    /// # Errors
    ///
    /// See [`SimSsd::read`].
    pub fn read_dependent(&mut self, id: PageId) -> Result<Bytes, StorageError> {
        self.read_with(id, true)
    }

    /// Issues a durability barrier to the underlying store and charges it
    /// to the ledger.
    ///
    /// # Errors
    ///
    /// See [`PageStore::sync`].
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.store.sync()?;
        self.ledger.syncs += 1;
        Ok(())
    }

    /// Discards every page with id ≥ `pages` (and its checksum sidecar and
    /// quarantine entries). Used by recovery to drop an uncommitted tail.
    ///
    /// # Errors
    ///
    /// See [`PageStore::truncate`].
    pub fn truncate(&mut self, pages: u64) -> Result<(), StorageError> {
        self.store.truncate(pages)?;
        let keep = usize::try_from(pages).unwrap_or(usize::MAX);
        if keep < self.crc.len() {
            self.crc.truncate(keep);
        }
        let _dropped = self.quarantine.split_off(&pages);
        Ok(())
    }

    /// The quarantined pages, sorted.
    pub fn quarantined_pages(&self) -> Vec<u64> {
        self.quarantine.iter().copied().collect()
    }

    /// Whether `page` is quarantined.
    pub fn is_quarantined(&self, page: u64) -> bool {
        self.quarantine.contains(&page)
    }

    /// Manually quarantines `page` (operational tooling and drills); a
    /// rewrite through the device lifts the quarantine.
    pub fn quarantine_page(&mut self, page: u64) {
        self.quarantine.insert(page);
    }

    /// The checksum sidecar entry for `page`: `Some` for pages written
    /// through the device, `None` for pre-existing pages (written before
    /// mount, or behind the device's back) whose integrity is unverifiable.
    pub fn page_crc(&self, page: u64) -> Option<u32> {
        self.crc.get(usize::try_from(page).ok()?).copied().flatten()
    }

    fn read_with(&mut self, id: PageId, dependent: bool) -> Result<Bytes, StorageError> {
        checked_read(
            &self.store,
            &self.crc,
            &self.quarantine,
            self.retry,
            &mut self.ledger,
            id,
            dependent,
        )
    }

    /// A shared-access read handle: N readers taken from the same device can
    /// scan concurrently (the paper's parallel flash channels feeding N
    /// filter pipelines), each charging a private [`CostLedger`]. Merge the
    /// per-reader ledgers back with [`SimSsd::merge_ledger`] once the scan
    /// joins; the merged totals equal a sequential scan's exactly.
    pub fn reader(&self) -> SsdReader<'_, S> {
        SsdReader {
            store: &self.store,
            crc: &self.crc,
            quarantine: &self.quarantine,
            retry: self.retry,
            ledger: CostLedger::default(),
        }
    }

    /// Folds a reader's (or any worker's) ledger into the device ledger.
    pub fn merge_ledger(&mut self, delta: &CostLedger) {
        self.ledger.merge(delta);
    }

    fn record_crc(&mut self, id: PageId, checksum: u32) {
        let idx = id.0 as usize;
        if idx >= self.crc.len() {
            self.crc.resize(idx + 1, None);
        }
        self.crc[idx] = Some(checksum);
        // A rewrite through the device carries fresh, verified content:
        // the quarantine is lifted.
        self.quarantine.remove(&id.0);
    }

    /// Scans the whole device, verifying every page's checksum, and returns
    /// a corruption report. Reads (and transient retries) are charged to the
    /// ledger like any other access — a scrub is a real full-device scan.
    /// Corrupt and retry-exhausted pages are quarantined (see
    /// [`SimSsd::scrub_slice`]).
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        let mut cursor = 0;
        loop {
            let slice = self.scrub_slice(cursor, u64::MAX);
            report.merge(&slice.report);
            if slice.complete {
                return report;
            }
            cursor = slice.next;
        }
    }

    /// Scrubs a bounded slice of the device: at most `max_pages` pages
    /// starting at page `start`, wrapping `start` into range. The building
    /// block of an *online* scrub — a service interleaves slices with query
    /// waves instead of stalling on a full pass.
    ///
    /// Every corrupt or retry-exhausted page found is added to the
    /// quarantine, so later reads fail up front ([`StorageError::Quarantined`])
    /// with zero flash charges instead of re-paying retries per query.
    /// Already-quarantined pages are counted and skipped without a read;
    /// unverified pages (no recorded checksum) cannot be judged and are
    /// never quarantined.
    pub fn scrub_slice(&mut self, start: u64, max_pages: u64) -> ScrubSlice {
        let extent = self.page_count();
        if extent == 0 {
            return ScrubSlice {
                complete: true,
                ..ScrubSlice::default()
            };
        }
        let start = start.min(extent);
        let end = start.saturating_add(max_pages).min(extent);
        let mut report = ScrubReport {
            pages_checked: end - start,
            ..ScrubReport::default()
        };
        for page in start..end {
            self.scrub_one(page, &mut report);
        }
        let complete = end >= extent;
        ScrubSlice {
            report,
            next: if complete { 0 } else { end },
            complete,
        }
    }

    /// Scrubs an explicit page set — the segment-scoped integrity scan. A
    /// sealed segment is its own fault domain, so its pages can be verified
    /// (and quarantined on failure) without touching the rest of the device.
    /// Same charging and quarantine semantics as [`SimSsd::scrub_slice`];
    /// out-of-range ids are counted as unreadable without a flash access.
    pub fn scrub_pages(&mut self, pages: &[u64]) -> ScrubReport {
        let extent = self.page_count();
        let mut report = ScrubReport {
            pages_checked: pages.len() as u64,
            ..ScrubReport::default()
        };
        for &page in pages {
            if page >= extent {
                report.unreadable.push(page);
                continue;
            }
            self.scrub_one(page, &mut report);
        }
        report
    }

    /// Checks one page for [`SimSsd::scrub_slice`] / [`SimSsd::scrub_pages`]:
    /// reads it through the verifying path, records the finding, and
    /// quarantines it on corruption or retry exhaustion.
    fn scrub_one(&mut self, page: u64, report: &mut ScrubReport) {
        if self.quarantine.contains(&page) {
            report.already_quarantined += 1;
            return;
        }
        let id = PageId(page);
        let retries_before = self.ledger.retries;
        match self.read(id) {
            Ok(_) => {
                if self.crc.get(page as usize).copied().flatten().is_none() {
                    report.unverified.push(page);
                }
            }
            Err(StorageError::Corrupt {
                page,
                expected,
                got,
            }) => {
                report.corrupt.push(CorruptPage {
                    page,
                    expected,
                    got,
                });
                self.quarantine.insert(page);
                report.quarantined.push(page);
            }
            Err(_) => {
                report.unreadable.push(page);
                self.quarantine.insert(page);
                report.quarantined.push(page);
            }
        }
        report.retries += self.ledger.retries - retries_before;
    }
}

/// Shared read path: the transient-retry loop plus checksum verification,
/// charging `ledger`. Used both by the device's own `&mut self` reads and by
/// [`SsdReader`] handles for concurrent `&self` access, so the two paths
/// cannot drift apart.
fn checked_read<S: PageStore>(
    store: &S,
    crc: &[Option<u32>],
    quarantine: &BTreeSet<u64>,
    retry: RetryPolicy,
    ledger: &mut CostLedger,
    id: PageId,
    dependent: bool,
) -> Result<Bytes, StorageError> {
    // The controller consults its quarantine table before issuing any flash
    // command: a quarantined page costs nothing — no read, no retries.
    if quarantine.contains(&id.0) {
        return Err(StorageError::Quarantined { page: id.0 });
    }
    let mut attempt = 0;
    loop {
        attempt += 1;
        match store.read_page(id) {
            Ok(page) => {
                ledger.pages_read += 1;
                if dependent {
                    ledger.dependent_visits += 1;
                }
                ledger.bytes_read += page.len() as u64;
                if let Some(&Some(expected)) = crc.get(id.0 as usize) {
                    let got = crc32(&page);
                    if got != expected {
                        return Err(StorageError::Corrupt {
                            page: id.0,
                            expected,
                            got,
                        });
                    }
                }
                return Ok(page);
            }
            Err(e) if e.is_transient() && attempt < retry.max_attempts => {
                // Each re-read pays a full flash access in the model.
                ledger.retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A shared-access read handle onto a [`SimSsd`], created with
/// [`SimSsd::reader`].
///
/// The handle borrows the store, the checksum sidecar, and the retry policy
/// immutably — [`PageStore`] reads are `&self` — and accumulates access
/// costs into a private [`CostLedger`]. That lets N workers (the paper's N
/// filter pipelines, each fed by its own flash channel) read disjoint page
/// batches concurrently without contending on the device ledger; each
/// worker's ledger is folded back with [`SimSsd::merge_ledger`] after the
/// scan joins. Reads through a handle carry the same semantics as
/// [`SimSsd::read`]: checksum verification and bounded transient retries.
#[derive(Debug)]
pub struct SsdReader<'a, S> {
    store: &'a S,
    crc: &'a [Option<u32>],
    quarantine: &'a BTreeSet<u64>,
    retry: RetryPolicy,
    ledger: CostLedger,
}

impl<S: PageStore> SsdReader<'_, S> {
    /// Reads a page as part of a bandwidth-bound batch; see [`SimSsd::read`].
    ///
    /// # Errors
    ///
    /// See [`SimSsd::read`].
    pub fn read(&mut self, id: PageId) -> Result<Bytes, StorageError> {
        checked_read(
            self.store,
            self.crc,
            self.quarantine,
            self.retry,
            &mut self.ledger,
            id,
            false,
        )
    }

    /// Reads a page as one step of a dependent chain; see
    /// [`SimSsd::read_dependent`].
    ///
    /// # Errors
    ///
    /// See [`SimSsd::read`].
    pub fn read_dependent(&mut self, id: PageId) -> Result<Bytes, StorageError> {
        checked_read(
            self.store,
            self.crc,
            self.quarantine,
            self.retry,
            &mut self.ledger,
            id,
            true,
        )
    }

    /// Whether `id` is quarantined: reading it would fail up front with
    /// [`StorageError::Quarantined`] and charge nothing. Scan paths check
    /// this *before* any cache lookup so cached and uncached runs stay
    /// byte-identical.
    pub fn is_quarantined(&self, id: PageId) -> bool {
        self.quarantine.contains(&id.0)
    }

    /// Costs charged through this handle so far.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Consumes the handle, returning its accumulated costs for merging via
    /// [`SimSsd::merge_ledger`].
    pub fn into_ledger(self) -> CostLedger {
        self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::Link;

    #[test]
    fn memstore_append_read_roundtrip() {
        let mut s = MemStore::new(4096);
        let a = s.append_page(b"alpha").unwrap();
        let b = s.append_page(b"beta").unwrap();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert_eq!(s.page_count(), 2);
        let page = s.read_page(a).unwrap();
        assert_eq!(&page[..5], b"alpha");
        assert!(page[5..].iter().all(|&x| x == 0), "zero padding expected");
        assert_eq!(page.len(), 4096);
    }

    #[test]
    fn memstore_out_of_range_and_oversized() {
        let mut s = MemStore::new(64);
        assert!(matches!(
            s.read_page(PageId(0)),
            Err(StorageError::OutOfRange { .. })
        ));
        assert!(matches!(
            s.append_page(&[0u8; 65]),
            Err(StorageError::Oversized { .. })
        ));
    }

    #[test]
    fn memstore_overwrite() {
        let mut s = MemStore::new(64);
        let id = s.append_page(b"old").unwrap();
        s.write_page(id, b"new").unwrap();
        assert_eq!(&s.read_page(id).unwrap()[..3], b"new");
        assert!(matches!(
            s.write_page(PageId(7), b"x"),
            Err(StorageError::OutOfRange { .. })
        ));
    }

    #[test]
    fn filestore_roundtrip() {
        let dir = std::env::temp_dir().join("mithrilog-filestore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        let mut s = FileStore::create(&path, 512).unwrap();
        let ids: Vec<PageId> = (0..10)
            .map(|i| s.append_page(format!("page-{i}").as_bytes()).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let page = s.read_page(*id).unwrap();
            assert_eq!(
                &page[..6.min(page.len())],
                format!("page-{i}").as_bytes()[..6].as_ref()
            );
        }
        s.write_page(ids[3], b"rewritten").unwrap();
        assert_eq!(&s.read_page(ids[3]).unwrap()[..9], b"rewritten");
        assert!(s.read_page(PageId(10)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simssd_ledger_tracks_reads_and_writes() {
        let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype());
        let id = ssd.append(b"data").unwrap();
        ssd.read(id).unwrap();
        ssd.read(id).unwrap();
        ssd.read_dependent(id).unwrap();
        let l = ssd.ledger();
        assert_eq!(l.pages_written, 1);
        assert_eq!(l.pages_read, 3);
        assert_eq!(l.dependent_visits, 1);
        assert_eq!(l.bytes_read, 3 * 4096);
    }

    #[test]
    fn simssd_modeled_time_reflects_access_pattern() {
        let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype());
        let id = ssd.append(b"x").unwrap();
        for _ in 0..100 {
            ssd.read_dependent(id).unwrap();
        }
        let chained = ssd.ledger().modeled_read_time(ssd.model(), Link::Internal);
        ssd.clear_ledger();
        for _ in 0..100 {
            ssd.read(id).unwrap();
        }
        let batched = ssd.ledger().modeled_read_time(ssd.model(), Link::Internal);
        assert!(
            chained > batched * 10,
            "dependent chains must be far slower: {chained:?} vs {batched:?}"
        );
    }

    #[test]
    fn clear_ledger_resets() {
        let mut ssd = SimSsd::new(MemStore::new(64), DevicePerfModel::default());
        ssd.append(b"x").unwrap();
        ssd.clear_ledger();
        assert_eq!(*ssd.ledger(), CostLedger::default());
    }

    #[test]
    fn reader_matches_device_reads_and_merges_ledger() {
        let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype());
        let ids: Vec<PageId> = (0..8)
            .map(|i| ssd.append(format!("page {i}").as_bytes()).unwrap())
            .collect();
        ssd.clear_ledger();
        let mut reader = ssd.reader();
        for (i, id) in ids.iter().enumerate() {
            let page = reader.read(*id).unwrap();
            assert_eq!(&page[..6], format!("page {i}").as_bytes());
        }
        reader.read_dependent(ids[0]).unwrap();
        let delta = reader.into_ledger();
        assert_eq!(delta.pages_read, 9);
        assert_eq!(delta.dependent_visits, 1);
        assert_eq!(ssd.ledger().pages_read, 0, "reader charges privately");
        ssd.merge_ledger(&delta);
        assert_eq!(ssd.ledger().pages_read, 9);
        assert_eq!(ssd.ledger().dependent_visits, 1);
    }

    #[test]
    fn concurrent_readers_sum_to_sequential_ledger() {
        let mut ssd = SimSsd::new(MemStore::new(512), DevicePerfModel::default());
        for i in 0..32 {
            ssd.append(format!("page {i}").as_bytes()).unwrap();
        }
        ssd.clear_ledger();
        let deltas: Vec<CostLedger> = std::thread::scope(|scope| {
            let ssd = &ssd;
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    scope.spawn(move || {
                        let mut reader = ssd.reader();
                        for page in (w..32).step_by(4) {
                            reader.read(PageId(page)).unwrap();
                        }
                        reader.into_ledger()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for delta in &deltas {
            ssd.merge_ledger(delta);
        }
        assert_eq!(ssd.ledger().pages_read, 32);
        assert_eq!(ssd.ledger().bytes_read, 32 * 512);
    }

    #[test]
    fn reader_sees_corruption_and_retries_like_the_device() {
        use crate::faults::{FaultKind, FaultPlan, FaultyStore};
        let plan = FaultPlan::seeded(5)
            .with_scheduled(0, FaultKind::BitRot { bit: 17 })
            .with_scheduled(1, FaultKind::TransientRead { failures: 2 });
        let store = FaultyStore::new(MemStore::new(64), plan);
        let mut ssd = SimSsd::new(store, DevicePerfModel::default());
        let rotten = ssd.append(b"rotten").unwrap();
        let flaky = ssd.append(b"flaky").unwrap();
        let mut reader = ssd.reader();
        assert!(matches!(
            reader.read(rotten),
            Err(StorageError::Corrupt { page: 0, .. })
        ));
        assert_eq!(&reader.read(flaky).unwrap()[..5], b"flaky");
        assert_eq!(reader.ledger().retries, 2);
        assert_eq!(reader.ledger().pages_read, 2);
    }

    #[test]
    fn corruption_behind_the_controller_is_detected() {
        let mut ssd = SimSsd::new(MemStore::new(64), DevicePerfModel::default());
        let good = ssd.append(b"good page").unwrap();
        let bad = ssd.append(b"doomed page").unwrap();
        // Writing through the raw store skips the checksum sidecar.
        ssd.store_mut().write_page(bad, b"smashed").unwrap();
        assert!(ssd.read(good).is_ok());
        match ssd.read(bad) {
            Err(StorageError::Corrupt {
                page,
                expected,
                got,
            }) => {
                assert_eq!(page, bad.0);
                assert_ne!(expected, got);
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        // Rewriting through the device restores integrity.
        ssd.write(bad, b"healed").unwrap();
        assert_eq!(&ssd.read(bad).unwrap()[..6], b"healed");
    }

    #[test]
    fn preexisting_pages_read_unverified() {
        let mut store = MemStore::new(64);
        store.append_page(b"legacy").unwrap();
        let mut ssd = SimSsd::new(store, DevicePerfModel::default());
        assert!(
            ssd.read(PageId(0)).is_ok(),
            "no checksum -> no verification"
        );
        let report = ssd.scrub();
        assert_eq!(report.unverified, vec![0]);
        assert!(report.is_clean());
    }

    #[test]
    fn transient_reads_are_retried_and_charged() {
        use crate::faults::{FaultKind, FaultPlan, FaultyStore};
        let plan = FaultPlan::seeded(1).with_scheduled(0, FaultKind::TransientRead { failures: 2 });
        let store = FaultyStore::new(MemStore::new(64), plan);
        let mut ssd = SimSsd::new(store, DevicePerfModel::default());
        let id = ssd.append(b"flaky but fine").unwrap();
        // Default policy allows 3 attempts: 2 failures + 1 success.
        let page = ssd.read(id).unwrap();
        assert_eq!(&page[..5], b"flaky");
        assert_eq!(ssd.ledger().retries, 2);
        assert_eq!(ssd.ledger().pages_read, 1);
        // The retries show up in modeled time as two extra flash accesses.
        let t = ssd.ledger().modeled_read_time(ssd.model(), Link::Internal);
        assert!(t >= ssd.model().read_latency * 3);
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        use crate::faults::{FaultKind, FaultPlan, FaultyStore};
        let plan =
            FaultPlan::seeded(2).with_scheduled(0, FaultKind::TransientRead { failures: 10 });
        let store = FaultyStore::new(MemStore::new(64), plan);
        let mut ssd = SimSsd::new(store, DevicePerfModel::default());
        let id = ssd.append(b"very flaky").unwrap();
        assert!(matches!(
            ssd.read(id),
            Err(StorageError::TransientRead { page: 0 })
        ));
        assert_eq!(ssd.ledger().retries, 2, "3 attempts = 2 retries");
        // A stricter policy fails faster; a later read drains the episode.
        ssd.set_retry_policy(RetryPolicy::none()).unwrap();
        assert!(ssd.read(id).is_err());
        assert_eq!(ssd.ledger().retries, 2, "no-retry policy charges nothing");
    }

    #[test]
    fn zero_attempt_retry_policy_is_a_config_error() {
        let mut ssd = SimSsd::new(MemStore::new(64), DevicePerfModel::default());
        let err = ssd
            .set_retry_policy(RetryPolicy { max_attempts: 0 })
            .unwrap_err();
        assert!(err.to_string().contains("at least one"), "{err}");
        assert_eq!(
            ssd.retry_policy(),
            RetryPolicy::default(),
            "a rejected policy must leave the previous one in effect"
        );
    }

    #[test]
    fn scrub_quarantines_and_quarantined_reads_charge_nothing() {
        use crate::faults::{FaultKind, FaultPlan, FaultyStore};
        let plan = FaultPlan::seeded(11)
            .with_scheduled(1, FaultKind::BitRot { bit: 3 })
            .with_scheduled(3, FaultKind::TransientRead { failures: 100 });
        let store = FaultyStore::new(MemStore::new(64), plan);
        let mut ssd = SimSsd::new(store, DevicePerfModel::default());
        for i in 0..5 {
            ssd.append(format!("page {i}").as_bytes()).unwrap();
        }
        let report = ssd.scrub();
        assert_eq!(report.quarantined, vec![1, 3], "corrupt + retry-exhausted");
        assert_eq!(ssd.quarantined_pages(), vec![1, 3]);

        // Repeat reads of a quarantined page fail up front with no flash
        // access: zero reads, zero retries on the ledger.
        let before = *ssd.ledger();
        for _ in 0..3 {
            assert!(matches!(
                ssd.read(PageId(3)),
                Err(StorageError::Quarantined { page: 3 })
            ));
        }
        assert_eq!(*ssd.ledger(), before, "quarantined reads are free");

        // A second scrub skips the quarantine without reading.
        let again = ssd.scrub();
        assert_eq!(again.already_quarantined, 2);
        assert!(again.quarantined.is_empty());
        assert!(!again.is_clean());
    }

    #[test]
    fn rewrite_lifts_the_quarantine() {
        let mut ssd = SimSsd::new(MemStore::new(64), DevicePerfModel::default());
        let id = ssd.append(b"doomed").unwrap();
        ssd.quarantine_page(id.0);
        assert!(matches!(
            ssd.read(id),
            Err(StorageError::Quarantined { .. })
        ));
        ssd.write(id, b"healed").unwrap();
        assert!(!ssd.is_quarantined(id.0));
        assert_eq!(&ssd.read(id).unwrap()[..6], b"healed");
        assert!(ssd.scrub().is_clean());
    }

    #[test]
    fn scrub_slices_cover_the_device_and_wrap() {
        use crate::faults::{FaultKind, FaultPlan, FaultyStore};
        let plan = FaultPlan::seeded(13).with_scheduled(6, FaultKind::BitRot { bit: 0 });
        let store = FaultyStore::new(MemStore::new(64), plan);
        let mut ssd = SimSsd::new(store, DevicePerfModel::default());
        for i in 0..8 {
            ssd.append(format!("page {i}").as_bytes()).unwrap();
        }
        let mut cursor = 0;
        let mut merged = ScrubReport::default();
        let mut slices = 0;
        loop {
            let slice = ssd.scrub_slice(cursor, 3);
            merged.merge(&slice.report);
            slices += 1;
            if slice.complete {
                assert_eq!(slice.next, 0, "a completed pass wraps the cursor");
                break;
            }
            cursor = slice.next;
        }
        assert_eq!(slices, 3, "8 pages in slices of 3");
        assert_eq!(merged.pages_checked, 8);
        let corrupt: Vec<u64> = merged.corrupt.iter().map(|c| c.page).collect();
        assert_eq!(corrupt, vec![6]);
        assert_eq!(merged.quarantined, vec![6]);
    }

    #[test]
    fn truncate_prunes_the_quarantine() {
        let mut ssd = SimSsd::new(MemStore::new(64), DevicePerfModel::default());
        for i in 0..4 {
            ssd.append(format!("page {i}").as_bytes()).unwrap();
        }
        ssd.quarantine_page(1);
        ssd.quarantine_page(3);
        ssd.truncate(2).unwrap();
        assert_eq!(ssd.quarantined_pages(), vec![1]);
    }

    #[test]
    fn scrub_finds_exactly_the_rotten_pages() {
        use crate::faults::{FaultKind, FaultPlan, FaultyStore};
        let plan = FaultPlan::seeded(3)
            .with_scheduled(2, FaultKind::BitRot { bit: 40 })
            .with_scheduled(5, FaultKind::BitRot { bit: 9 });
        let store = FaultyStore::new(MemStore::new(64), plan);
        let mut ssd = SimSsd::new(store, DevicePerfModel::default());
        for i in 0..8 {
            ssd.append(format!("page {i}").as_bytes()).unwrap();
        }
        let report = ssd.scrub();
        assert_eq!(report.pages_checked, 8);
        let corrupt: Vec<u64> = report.corrupt.iter().map(|c| c.page).collect();
        assert_eq!(corrupt, vec![2, 5]);
        assert!(report.unreadable.is_empty());
        assert!(report.unverified.is_empty());
        assert!(!report.is_clean());
        assert!(report.to_string().contains("2 corrupt"), "{report}");
    }
}
