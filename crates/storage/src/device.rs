use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::error::StorageError;
use crate::perf::{CostLedger, DevicePerfModel};

/// Identifier of one fixed-size page on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// The raw page number.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A page-granular storage backend.
///
/// Writes shorter than a page are zero-padded; the page size is fixed at
/// construction. Implementations must be usable from `&self` for reads so a
/// query path can run while holding shared references.
pub trait PageStore: Send + Sync {
    /// Page size in bytes.
    fn page_bytes(&self) -> usize;

    /// Pages currently allocated.
    fn page_count(&self) -> u64;

    /// Reads page `id` in full.
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfRange`] if `id` is unallocated; I/O errors for
    /// file-backed stores.
    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError>;

    /// Appends `data` as a new page (zero-padded), returning its id.
    ///
    /// # Errors
    ///
    /// [`StorageError::Oversized`] if `data` exceeds one page; I/O errors
    /// for file-backed stores.
    fn append_page(&mut self, data: &[u8]) -> Result<PageId, StorageError>;

    /// Overwrites an existing page (used by index snapshots).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PageStore::read_page`] and
    /// [`PageStore::append_page`].
    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError>;
}

/// In-memory page store: the default functional backend.
#[derive(Debug, Default)]
pub struct MemStore {
    pages: Vec<Bytes>,
    page_bytes: usize,
}

impl MemStore {
    /// Creates an empty store with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn new(page_bytes: usize) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        MemStore {
            pages: Vec::new(),
            page_bytes,
        }
    }

    fn pad(&self, data: &[u8]) -> Result<Bytes, StorageError> {
        if data.len() > self.page_bytes {
            return Err(StorageError::Oversized {
                got: data.len(),
                page_bytes: self.page_bytes,
            });
        }
        let mut buf = vec![0u8; self.page_bytes];
        buf[..data.len()].copy_from_slice(data);
        Ok(Bytes::from(buf))
    }
}

impl PageStore for MemStore {
    fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError> {
        self.pages
            .get(id.0 as usize)
            .cloned()
            .ok_or(StorageError::OutOfRange {
                page: id.0,
                extent: self.pages.len() as u64,
            })
    }

    fn append_page(&mut self, data: &[u8]) -> Result<PageId, StorageError> {
        let page = self.pad(data)?;
        self.pages.push(page);
        Ok(PageId(self.pages.len() as u64 - 1))
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        if id.0 as usize >= self.pages.len() {
            return Err(StorageError::OutOfRange {
                page: id.0,
                extent: self.pages.len() as u64,
            });
        }
        let page = self.pad(data)?;
        self.pages[id.0 as usize] = page;
        Ok(())
    }
}

/// File-backed page store for corpora larger than RAM.
#[derive(Debug)]
pub struct FileStore {
    file: Mutex<File>,
    page_bytes: usize,
    page_count: u64,
}

impl FileStore {
    /// Creates (truncating) a file-backed store at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file creation errors.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn create(path: &Path, page_bytes: usize) -> Result<Self, StorageError> {
        assert!(page_bytes > 0, "page size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore {
            file: Mutex::new(file),
            page_bytes,
            page_count: 0,
        })
    }
}

impl PageStore for FileStore {
    fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    fn page_count(&self) -> u64 {
        self.page_count
    }

    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError> {
        if id.0 >= self.page_count {
            return Err(StorageError::OutOfRange {
                page: id.0,
                extent: self.page_count,
            });
        }
        let mut buf = vec![0u8; self.page_bytes];
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 * self.page_bytes as u64))?;
        file.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn append_page(&mut self, data: &[u8]) -> Result<PageId, StorageError> {
        if data.len() > self.page_bytes {
            return Err(StorageError::Oversized {
                got: data.len(),
                page_bytes: self.page_bytes,
            });
        }
        let mut buf = vec![0u8; self.page_bytes];
        buf[..data.len()].copy_from_slice(data);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(self.page_count * self.page_bytes as u64))?;
        file.write_all(&buf)?;
        let id = PageId(self.page_count);
        self.page_count += 1;
        Ok(id)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        if id.0 >= self.page_count {
            return Err(StorageError::OutOfRange {
                page: id.0,
                extent: self.page_count,
            });
        }
        if data.len() > self.page_bytes {
            return Err(StorageError::Oversized {
                got: data.len(),
                page_bytes: self.page_bytes,
            });
        }
        let mut buf = vec![0u8; self.page_bytes];
        buf[..data.len()].copy_from_slice(data);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 * self.page_bytes as u64))?;
        file.write_all(&buf)?;
        Ok(())
    }
}

/// A simulated SSD: a [`PageStore`] plus a [`DevicePerfModel`] and a
/// [`CostLedger`] recording every access for modeled-time reporting.
#[derive(Debug)]
pub struct SimSsd<S> {
    store: S,
    model: DevicePerfModel,
    ledger: CostLedger,
}

impl<S: PageStore> SimSsd<S> {
    /// Wraps a store with a performance model.
    pub fn new(store: S, model: DevicePerfModel) -> Self {
        SimSsd {
            store,
            model,
            ledger: CostLedger::default(),
        }
    }

    /// The performance model in use.
    pub fn model(&self) -> &DevicePerfModel {
        &self.model
    }

    /// Access counters accumulated so far.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Resets the access counters.
    pub fn clear_ledger(&mut self) {
        self.ledger.clear();
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.store.page_bytes()
    }

    /// Pages allocated.
    pub fn page_count(&self) -> u64 {
        self.store.page_count()
    }

    /// Appends a page.
    ///
    /// # Errors
    ///
    /// See [`PageStore::append_page`].
    pub fn append(&mut self, data: &[u8]) -> Result<PageId, StorageError> {
        let id = self.store.append_page(data)?;
        self.ledger.pages_written += 1;
        self.ledger.bytes_written += data.len() as u64;
        Ok(id)
    }

    /// Overwrites a page.
    ///
    /// # Errors
    ///
    /// See [`PageStore::write_page`].
    pub fn write(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        self.store.write_page(id, data)?;
        self.ledger.pages_written += 1;
        self.ledger.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Reads a page as part of a bandwidth-bound batch.
    ///
    /// # Errors
    ///
    /// See [`PageStore::read_page`].
    pub fn read(&mut self, id: PageId) -> Result<Bytes, StorageError> {
        let page = self.store.read_page(id)?;
        self.ledger.pages_read += 1;
        self.ledger.bytes_read += page.len() as u64;
        Ok(page)
    }

    /// Reads a page as one step of a dependent chain (latency-exposed, e.g.
    /// linked-list traversal in the inverted index).
    ///
    /// # Errors
    ///
    /// See [`PageStore::read_page`].
    pub fn read_dependent(&mut self, id: PageId) -> Result<Bytes, StorageError> {
        let page = self.store.read_page(id)?;
        self.ledger.pages_read += 1;
        self.ledger.dependent_visits += 1;
        self.ledger.bytes_read += page.len() as u64;
        Ok(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::Link;

    #[test]
    fn memstore_append_read_roundtrip() {
        let mut s = MemStore::new(4096);
        let a = s.append_page(b"alpha").unwrap();
        let b = s.append_page(b"beta").unwrap();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert_eq!(s.page_count(), 2);
        let page = s.read_page(a).unwrap();
        assert_eq!(&page[..5], b"alpha");
        assert!(page[5..].iter().all(|&x| x == 0), "zero padding expected");
        assert_eq!(page.len(), 4096);
    }

    #[test]
    fn memstore_out_of_range_and_oversized() {
        let mut s = MemStore::new(64);
        assert!(matches!(
            s.read_page(PageId(0)),
            Err(StorageError::OutOfRange { .. })
        ));
        assert!(matches!(
            s.append_page(&[0u8; 65]),
            Err(StorageError::Oversized { .. })
        ));
    }

    #[test]
    fn memstore_overwrite() {
        let mut s = MemStore::new(64);
        let id = s.append_page(b"old").unwrap();
        s.write_page(id, b"new").unwrap();
        assert_eq!(&s.read_page(id).unwrap()[..3], b"new");
        assert!(matches!(
            s.write_page(PageId(7), b"x"),
            Err(StorageError::OutOfRange { .. })
        ));
    }

    #[test]
    fn filestore_roundtrip() {
        let dir = std::env::temp_dir().join("mithrilog-filestore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        let mut s = FileStore::create(&path, 512).unwrap();
        let ids: Vec<PageId> = (0..10)
            .map(|i| s.append_page(format!("page-{i}").as_bytes()).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let page = s.read_page(*id).unwrap();
            assert_eq!(&page[..6.min(page.len())], format!("page-{i}").as_bytes()[..6].as_ref());
        }
        s.write_page(ids[3], b"rewritten").unwrap();
        assert_eq!(&s.read_page(ids[3]).unwrap()[..9], b"rewritten");
        assert!(s.read_page(PageId(10)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simssd_ledger_tracks_reads_and_writes() {
        let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype());
        let id = ssd.append(b"data").unwrap();
        ssd.read(id).unwrap();
        ssd.read(id).unwrap();
        ssd.read_dependent(id).unwrap();
        let l = ssd.ledger();
        assert_eq!(l.pages_written, 1);
        assert_eq!(l.pages_read, 3);
        assert_eq!(l.dependent_visits, 1);
        assert_eq!(l.bytes_read, 3 * 4096);
    }

    #[test]
    fn simssd_modeled_time_reflects_access_pattern() {
        let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype());
        let id = ssd.append(b"x").unwrap();
        for _ in 0..100 {
            ssd.read_dependent(id).unwrap();
        }
        let chained = ssd.ledger().modeled_read_time(ssd.model(), Link::Internal);
        ssd.clear_ledger();
        for _ in 0..100 {
            ssd.read(id).unwrap();
        }
        let batched = ssd.ledger().modeled_read_time(ssd.model(), Link::Internal);
        assert!(
            chained > batched * 10,
            "dependent chains must be far slower: {chained:?} vs {batched:?}"
        );
    }

    #[test]
    fn clear_ledger_resets() {
        let mut ssd = SimSsd::new(MemStore::new(64), DevicePerfModel::default());
        ssd.append(b"x").unwrap();
        ssd.clear_ledger();
        assert_eq!(*ssd.ledger(), CostLedger::default());
    }
}
