//! Internal deterministic RNG shared by the fault- and crash-injection
//! layers.

/// SplitMix64: small, fast, deterministic — the same generator the
/// workspace's offline `rand` stand-in uses.
#[derive(Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed ^ 0x1234_5678_9ABC_DEF0,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub(crate) fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_draws_stay_bounded() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
