//! Simulated page-addressed SSD for MithriLog.
//!
//! The paper's prototype is four BlueDBM flash cards behind two FPGAs,
//! presenting 4.8 GB/s of *internal* bandwidth but only 3.1 GB/s of PCIe
//! bandwidth to the host — the asymmetry near-storage computation exploits.
//! This crate substitutes that hardware with:
//!
//! * a functional page store ([`MemStore`] in RAM, [`FileStore`] on disk)
//!   holding fixed-size pages addressed by [`PageId`];
//! * an explicit, documented performance model ([`DevicePerfModel`]) with
//!   the prototype's latency/bandwidth/channel parameters, used to convert
//!   access traces into modeled elapsed time;
//! * [`SimSsd`], which pairs the two and keeps a [`CostLedger`] of every
//!   access so higher layers can report both functional results and modeled
//!   device time.
//!
//! # Example
//!
//! ```
//! use mithrilog_storage::{DevicePerfModel, MemStore, SimSsd};
//!
//! let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype());
//! let id = ssd.append(b"hello page")?;
//! let page = ssd.read(id)?;
//! assert_eq!(&page[..10], b"hello page");
//! assert_eq!(ssd.ledger().pages_read, 1);
//! # Ok::<(), mithrilog_storage::StorageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod perf;

pub use device::{FileStore, MemStore, PageId, PageStore, SimSsd};
pub use error::StorageError;
pub use perf::{CostLedger, DevicePerfModel, Link};
