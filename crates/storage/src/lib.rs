//! Simulated page-addressed SSD for MithriLog.
//!
//! The paper's prototype is four BlueDBM flash cards behind two FPGAs,
//! presenting 4.8 GB/s of *internal* bandwidth but only 3.1 GB/s of PCIe
//! bandwidth to the host — the asymmetry near-storage computation exploits.
//! This crate substitutes that hardware with:
//!
//! * a functional page store ([`MemStore`] in RAM, [`FileStore`] on disk)
//!   holding fixed-size pages addressed by [`PageId`];
//! * an explicit, documented performance model ([`DevicePerfModel`]) with
//!   the prototype's latency/bandwidth/channel parameters, used to convert
//!   access traces into modeled elapsed time;
//! * [`SimSsd`], which pairs the two and keeps a [`CostLedger`] of every
//!   access so higher layers can report both functional results and modeled
//!   device time;
//! * an integrity layer: per-page CRC32 checksums verified on every read
//!   (surfacing silent corruption as [`StorageError::Corrupt`]), bounded
//!   retries of transient read failures per [`RetryPolicy`], and a
//!   full-device [`SimSsd::scrub`] scan producing a [`ScrubReport`];
//! * concurrency: shared-access read handles ([`SsdReader`]) let N workers
//!   (the paper's N filter pipelines on parallel flash channels) scan
//!   disjoint page batches at once, each charging a private [`CostLedger`]
//!   merged back afterwards ([`SimSsd::merge_ledger`]);
//! * deterministic fault injection ([`FaultyStore`] driven by a seeded
//!   [`FaultPlan`]) for reproducible corruption and recovery drills;
//! * crash consistency: a dual-slot, CRC-protected [`Superblock`] flipped
//!   write-new-then-swap at each commit, a backward-chained journal of
//!   [`CommitRecord`] manifests, explicit [`PageStore::sync`] barriers,
//!   and deterministic power-loss injection ([`CrashStore`] driven by a
//!   [`CrashPlan`]) that freezes the store at exactly the bytes a real
//!   crash would leave — including torn tail writes.
//!
//! # Example
//!
//! ```
//! use mithrilog_storage::{DevicePerfModel, MemStore, SimSsd};
//!
//! let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype());
//! let id = ssd.append(b"hello page")?;
//! let page = ssd.read(id)?;
//! assert_eq!(&page[..10], b"hello page");
//! assert_eq!(ssd.ledger().pages_read, 1);
//! # Ok::<(), mithrilog_storage::StorageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crash;
mod crc;
mod device;
mod error;
mod faults;
mod journal;
mod perf;
mod rng;
mod superblock;

pub use crash::{CrashHandle, CrashPlan, CrashStore};
pub use crc::{crc32, crc32_padded, Crc32};
pub use device::{
    CorruptPage, FileStore, MemStore, PageId, PageStore, RetryPolicy, ScrubReport, ScrubSlice,
    SimSsd, SsdReader,
};
pub use error::{ConfigError, StorageError};
pub use faults::{FaultKind, FaultPlan, FaultyStore, InjectedFault};
pub use journal::{
    append_commit, append_record, replay as replay_journal, CommitRecord, DropRecord,
    JournalRecord, SealRecord,
};
pub use perf::{CostLedger, DevicePerfModel, Link};
pub use superblock::{
    format_device, read_active as read_active_superblock, write_commit as write_superblock_commit,
    CheckpointRef, Superblock,
};
