use std::time::Duration;

/// Which link data crosses when leaving the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Link {
    /// Device-internal path: flash channels → near-storage accelerator.
    Internal,
    /// External path: device → host over PCIe.
    External,
}

/// Analytic performance model of the storage device (paper §7.2, Table 3).
///
/// Defaults match the BlueDBM-based prototype: 4 KB pages, ~100 µs flash
/// read latency, 4.8 GB/s aggregate internal bandwidth over four cards,
/// 3.1 GB/s effective PCIe DMA bandwidth. The comparison machine's RAID-0
/// NVMe array is available via [`DevicePerfModel::comparison_nvme`].
///
/// The model is deliberately simple and fully documented:
///
/// * streaming `n` bytes costs `n / bandwidth(link)`;
/// * a *dependent* chain of `k` page reads (each address discovered from
///   the previous page, as in linked-list traversal) costs `k × latency`;
/// * a batch of `n` independent page reads costs
///   `max(latency, n × page / bandwidth)` — deep queues hide per-page
///   latency behind the transfer time, but one latency is always paid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePerfModel {
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Flash page read latency.
    pub read_latency: Duration,
    /// Aggregate internal bandwidth in bytes/second.
    pub internal_bw: f64,
    /// External (PCIe) bandwidth in bytes/second.
    pub external_bw: f64,
    /// Independent flash channels (BlueDBM cards in the prototype).
    pub channels: usize,
}

const GB: f64 = 1_000_000_000.0;

impl DevicePerfModel {
    /// The paper's prototype: 4 BlueDBM cards, 2 VC707 FPGAs.
    pub fn bluedbm_prototype() -> Self {
        DevicePerfModel {
            page_bytes: 4096,
            read_latency: Duration::from_micros(100),
            internal_bw: 4.8 * GB,
            external_bw: 3.1 * GB,
            channels: 4,
        }
    }

    /// The comparison machine's storage: RAID-0 of two NVMe drives,
    /// 7 GB/s measured peak (Table 3). No internal/external asymmetry is
    /// exploitable by software, so both links get the same bandwidth.
    pub fn comparison_nvme() -> Self {
        DevicePerfModel {
            page_bytes: 4096,
            read_latency: Duration::from_micros(80),
            internal_bw: 7.0 * GB,
            external_bw: 7.0 * GB,
            channels: 8,
        }
    }

    fn bw(&self, link: Link) -> f64 {
        match link {
            Link::Internal => self.internal_bw,
            Link::External => self.external_bw,
        }
    }

    /// Time to stream `bytes` over `link` at full bandwidth.
    pub fn stream_time(&self, bytes: u64, link: Link) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bw(link))
    }

    /// Time for a dependent chain of `visits` page reads (linked-list
    /// traversal: each address comes from the previous read, so latency is
    /// fully exposed).
    pub fn dependent_chain_time(&self, visits: u64) -> Duration {
        self.read_latency * u32::try_from(visits.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
    }

    /// Time for `pages` independent page reads delivered over `link`.
    pub fn parallel_read_time(&self, pages: u64, link: Link) -> Duration {
        if pages == 0 {
            return Duration::ZERO;
        }
        let transfer = self.stream_time(pages * self.page_bytes as u64, link);
        transfer.max(self.read_latency)
    }

    /// Pages per second the device sustains for dependent (latency-bound)
    /// access — the figure the paper uses to motivate the tree-of-lists
    /// index ("a storage device with a reasonable 100 µs latency can only
    /// visit 10,000 index nodes per second").
    pub fn dependent_visits_per_sec(&self) -> f64 {
        1.0 / self.read_latency.as_secs_f64()
    }
}

impl Default for DevicePerfModel {
    fn default() -> Self {
        Self::bluedbm_prototype()
    }
}

/// Accumulated access costs of a [`SimSsd`](crate::SimSsd).
///
/// Functional reads are instant (RAM copies); the ledger records what the
/// modeled device *would* have spent, so experiments can report modeled
/// elapsed time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostLedger {
    /// Pages read (any pattern).
    pub pages_read: u64,
    /// Pages read as part of dependent chains (latency fully exposed).
    pub dependent_visits: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Raw bytes read.
    pub bytes_read: u64,
    /// Raw bytes written.
    pub bytes_written: u64,
    /// Extra read attempts spent recovering from transient read failures;
    /// each costs a full flash access latency in the model.
    pub retries: u64,
    /// Durability barriers issued (commit-protocol sync points).
    pub syncs: u64,
    /// Page-read demands satisfied by fanning an already-read page out to
    /// an additional consumer instead of re-reading flash. A shared scan
    /// over N queries whose plans overlap records the physical read once in
    /// `pages_read` and every avoided duplicate here, so
    /// `pages_read + shared_reads` equals what the same queries would have
    /// charged run one at a time.
    pub shared_reads: u64,
    /// Page-read demands satisfied from the host-side decompressed-page
    /// cache instead of flash. Like `shared_reads`, a physical saving: the
    /// as-if-solo charge for the page lands on the consumer's own ledger,
    /// and the avoided device work is recorded here.
    pub cache_hits: u64,
    /// Raw bytes the cache kept off the device (the stored page length of
    /// every hit).
    pub cache_bytes_saved: u64,
}

impl CostLedger {
    /// Resets all counters.
    pub fn clear(&mut self) {
        *self = CostLedger::default();
    }

    /// Accumulates another ledger into this one. Every field is an additive
    /// counter, so merging per-worker ledgers from a parallel scan in any
    /// order yields exactly the totals a sequential scan would have charged.
    pub fn merge(&mut self, other: &CostLedger) {
        self.pages_read += other.pages_read;
        self.dependent_visits += other.dependent_visits;
        self.pages_written += other.pages_written;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.retries += other.retries;
        self.syncs += other.syncs;
        self.shared_reads += other.shared_reads;
        self.cache_hits += other.cache_hits;
        self.cache_bytes_saved += other.cache_bytes_saved;
    }

    /// Difference since an earlier snapshot (for per-query accounting).
    #[must_use]
    pub fn since(&self, earlier: &CostLedger) -> CostLedger {
        CostLedger {
            pages_read: self.pages_read - earlier.pages_read,
            dependent_visits: self.dependent_visits - earlier.dependent_visits,
            pages_written: self.pages_written - earlier.pages_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            retries: self.retries - earlier.retries,
            syncs: self.syncs - earlier.syncs,
            shared_reads: self.shared_reads - earlier.shared_reads,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_bytes_saved: self.cache_bytes_saved - earlier.cache_bytes_saved,
        }
    }

    /// Physical page reads plus the duplicates avoided by cross-query page
    /// sharing and the decompressed-page cache — the read demand the same
    /// work would have issued with neither optimization.
    pub fn demanded_reads(&self) -> u64 {
        self.pages_read + self.shared_reads + self.cache_hits
    }

    /// Modeled time for this ledger under `model`, with bulk reads crossing
    /// `link`: dependent visits pay latency serially, remaining pages are
    /// bandwidth-bound, and every transient-read retry pays one more full
    /// flash access latency.
    pub fn modeled_read_time(&self, model: &DevicePerfModel, link: Link) -> std::time::Duration {
        let chain = model.dependent_chain_time(self.dependent_visits);
        let bulk_pages = self.pages_read.saturating_sub(self.dependent_visits);
        let retry_cost = model.dependent_chain_time(self.retries);
        chain + model.parallel_read_time(bulk_pages, link) + retry_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_table3() {
        let m = DevicePerfModel::bluedbm_prototype();
        assert_eq!(m.page_bytes, 4096);
        assert!((m.internal_bw - 4.8e9).abs() < 1.0);
        assert!((m.external_bw - 3.1e9).abs() < 1.0);
        // Internal/external asymmetry ≈ 1.55×, close to Samsung's 1.8×.
        let ratio = m.internal_bw / m.external_bw;
        assert!(ratio > 1.3 && ratio < 1.9);
    }

    #[test]
    fn stream_time_is_linear_in_bytes() {
        let m = DevicePerfModel::bluedbm_prototype();
        let t1 = m.stream_time(1_000_000, Link::External);
        let t2 = m.stream_time(2_000_000, Link::External);
        // Durations quantize to nanoseconds, so allow 2 ns of slack.
        assert!((t2.as_secs_f64() - 2.0 * t1.as_secs_f64()).abs() < 2e-9);
        assert!(m.stream_time(1_000_000, Link::Internal) < t1);
    }

    #[test]
    fn ten_thousand_dependent_visits_per_second() {
        // The paper's motivating arithmetic for the index design.
        let m = DevicePerfModel::bluedbm_prototype();
        assert!((m.dependent_visits_per_sec() - 10_000.0).abs() < 1e-6);
        assert_eq!(m.dependent_chain_time(10_000), Duration::from_secs(1));
    }

    #[test]
    fn parallel_reads_are_bandwidth_bound_when_large() {
        let m = DevicePerfModel::bluedbm_prototype();
        // 1 GB of pages over the internal link ≈ 0.208 s ≫ latency.
        let pages = 1_000_000_000 / 4096;
        let t = m.parallel_read_time(pages, Link::Internal);
        let expect = (pages * 4096) as f64 / 4.8e9;
        assert!((t.as_secs_f64() - expect).abs() / expect < 0.01);
        // A single page is latency-bound.
        assert_eq!(m.parallel_read_time(1, Link::Internal), m.read_latency);
        assert_eq!(m.parallel_read_time(0, Link::Internal), Duration::ZERO);
    }

    #[test]
    fn ledger_since_subtracts() {
        let a = CostLedger {
            pages_read: 10,
            dependent_visits: 2,
            pages_written: 1,
            bytes_read: 40960,
            bytes_written: 4096,
            retries: 1,
            syncs: 2,
            ..CostLedger::default()
        };
        let b = CostLedger {
            pages_read: 25,
            dependent_visits: 5,
            pages_written: 1,
            bytes_read: 102400,
            bytes_written: 4096,
            retries: 4,
            syncs: 6,
            ..CostLedger::default()
        };
        let d = b.since(&a);
        assert_eq!(d.pages_read, 15);
        assert_eq!(d.dependent_visits, 3);
        assert_eq!(d.pages_written, 0);
        assert_eq!(d.retries, 3);
        assert_eq!(d.syncs, 4);
    }

    #[test]
    fn shared_reads_merge_subtract_and_sum_into_demand() {
        let mut a = CostLedger {
            pages_read: 10,
            shared_reads: 4,
            ..CostLedger::default()
        };
        let b = CostLedger {
            pages_read: 3,
            shared_reads: 2,
            ..CostLedger::default()
        };
        a.merge(&b);
        assert_eq!(a.shared_reads, 6);
        assert_eq!(a.demanded_reads(), 19);
        let d = a.since(&b);
        assert_eq!(d.shared_reads, 4);
        assert_eq!(d.pages_read, 10);
    }

    #[test]
    fn cache_hits_merge_subtract_and_sum_into_demand() {
        let mut a = CostLedger {
            pages_read: 10,
            shared_reads: 4,
            cache_hits: 3,
            cache_bytes_saved: 3 * 4096,
            ..CostLedger::default()
        };
        let b = CostLedger {
            cache_hits: 2,
            cache_bytes_saved: 2 * 4096,
            ..CostLedger::default()
        };
        a.merge(&b);
        assert_eq!(a.cache_hits, 5);
        assert_eq!(a.cache_bytes_saved, 5 * 4096);
        assert_eq!(a.demanded_reads(), 19);
        let d = a.since(&b);
        assert_eq!(d.cache_hits, 3);
        assert_eq!(d.cache_bytes_saved, 3 * 4096);
    }

    #[test]
    fn ledger_merge_is_additive_and_order_independent() {
        let a = CostLedger {
            pages_read: 10,
            dependent_visits: 2,
            pages_written: 1,
            bytes_read: 40960,
            bytes_written: 4096,
            retries: 1,
            syncs: 2,
            ..CostLedger::default()
        };
        let b = CostLedger {
            pages_read: 5,
            retries: 3,
            ..CostLedger::default()
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.pages_read, 15);
        assert_eq!(ab.retries, 4);
        assert_eq!(ab.syncs, 2);
    }

    #[test]
    fn modeled_time_combines_chain_and_bulk() {
        let m = DevicePerfModel::bluedbm_prototype();
        let l = CostLedger {
            pages_read: 1000,
            dependent_visits: 10,
            ..CostLedger::default()
        };
        let t = l.modeled_read_time(&m, Link::Internal);
        let chain = 10.0 * 100e-6;
        let bulk: f64 = (990.0 * 4096.0) / 4.8e9;
        assert!((t.as_secs_f64() - (chain + bulk.max(100e-6))).abs() < 1e-9);
    }

    #[test]
    fn retries_add_full_latency_each() {
        let m = DevicePerfModel::bluedbm_prototype();
        let base = CostLedger {
            pages_read: 100,
            ..CostLedger::default()
        };
        let retried = CostLedger { retries: 5, ..base };
        let delta = retried.modeled_read_time(&m, Link::Internal)
            - base.modeled_read_time(&m, Link::Internal);
        assert_eq!(delta, m.read_latency * 5);
    }

    #[test]
    fn comparison_machine_is_faster_at_streaming() {
        let proto = DevicePerfModel::bluedbm_prototype();
        let nvme = DevicePerfModel::comparison_nvme();
        // The paper stresses the comparison machine's storage is *faster* —
        // MithriLog wins on computation, not raw storage.
        assert!(nvme.external_bw > proto.external_bw);
        assert!(nvme.external_bw > proto.internal_bw);
    }
}
