//! Versioned, CRC-protected superblock and the dual-slot atomic-flip
//! protocol that makes commits crash-safe.
//!
//! Pages 0 and 1 of a formatted device are reserved as superblock slots.
//! A commit with sequence number `n` writes its superblock into slot
//! `n % 2` — always the slot *not* holding the currently valid superblock —
//! so a torn superblock write destroys at most the new copy while the old
//! one survives intact (write-new-then-swap). On mount, both slots are
//! decoded and the valid one with the highest sequence wins.

use crate::crc::crc32;
use crate::device::{PageId, PageStore, SimSsd};
use crate::error::StorageError;

/// Reference to a serialized index checkpoint stored as a run of pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRef {
    /// First page of the checkpoint run.
    pub first_page: u64,
    /// Pages in the run.
    pub page_count: u64,
    /// Exact byte length of the checkpoint blob (the last page is padded).
    pub byte_len: u64,
    /// CRC32 of the whole blob.
    pub crc: u32,
}

/// The device superblock: the single source of truth for what is committed.
///
/// Everything at page id ≥ [`Superblock::committed_pages`] is an
/// uncommitted tail to be discarded on recovery; everything below it was
/// made durable by a completed commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// On-disk format version (see [`Superblock::FORMAT_VERSION`]).
    pub format_version: u32,
    /// Page size the store was formatted with.
    pub page_bytes: u32,
    /// Commit sequence number; selects the slot (`sequence % 2`) and breaks
    /// ties between two valid slots on mount.
    pub sequence: u64,
    /// Device extent at commit time; pages beyond this are uncommitted.
    pub committed_pages: u64,
    /// Newest journal (manifest) page of the commit chain, if any commit
    /// has happened.
    pub journal_head: Option<u64>,
    /// The committed index checkpoint, if one was written.
    pub checkpoint: Option<CheckpointRef>,
}

const MAGIC: &[u8; 4] = b"MLSB";
const NONE: u64 = u64::MAX;

impl Superblock {
    /// Current on-disk format version.
    pub const FORMAT_VERSION: u32 = 1;
    /// Serialized superblock record size within its page.
    pub const HEADER_BYTES: usize = 72;
    /// Reserved superblock slot pages at the start of the device.
    pub const SLOTS: u64 = 2;
    /// Page sizes [`FileStore::open`](crate::FileStore::open) probes for
    /// slot 1 when slot 0 is torn. Stores with other page sizes remain
    /// recoverable whenever slot 0 is intact.
    pub const CANDIDATE_PAGE_SIZES: &'static [usize] =
        &[128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536];

    /// A freshly formatted store's superblock (sequence 0, nothing
    /// committed beyond the slot pages themselves).
    pub fn initial(page_bytes: usize) -> Self {
        Superblock {
            format_version: Self::FORMAT_VERSION,
            page_bytes: page_bytes as u32,
            sequence: 0,
            committed_pages: Self::SLOTS,
            journal_head: None,
            checkpoint: None,
        }
    }

    /// The slot page this superblock belongs in.
    pub fn slot(&self) -> PageId {
        PageId(self.sequence % Self::SLOTS)
    }

    /// Serializes the superblock record (checksummed; page-padded by the
    /// device on write).
    pub fn encode(&self) -> [u8; Self::HEADER_BYTES] {
        let mut buf = [0u8; Self::HEADER_BYTES];
        buf[0..4].copy_from_slice(MAGIC);
        buf[4..8].copy_from_slice(&self.format_version.to_le_bytes());
        buf[8..12].copy_from_slice(&self.page_bytes.to_le_bytes());
        // bytes 12..16 reserved (zero)
        buf[16..24].copy_from_slice(&self.sequence.to_le_bytes());
        buf[24..32].copy_from_slice(&self.committed_pages.to_le_bytes());
        buf[32..40].copy_from_slice(&self.journal_head.unwrap_or(NONE).to_le_bytes());
        let (first, count, len, crc) = match self.checkpoint {
            Some(c) => (c.first_page, c.page_count, c.byte_len, c.crc),
            None => (NONE, 0, 0, 0),
        };
        buf[40..48].copy_from_slice(&first.to_le_bytes());
        buf[48..56].copy_from_slice(&count.to_le_bytes());
        buf[56..64].copy_from_slice(&len.to_le_bytes());
        buf[64..68].copy_from_slice(&crc.to_le_bytes());
        let checksum = crc32(&buf[..68]);
        buf[68..72].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Decodes and validates a superblock record from the head of a page.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidSuperblock`] on short input, bad magic,
    /// unsupported version, zero page size, or checksum mismatch.
    pub fn decode(bytes: &[u8]) -> Result<Self, StorageError> {
        let bad = |reason: String| StorageError::InvalidSuperblock(reason);
        if bytes.len() < Self::HEADER_BYTES {
            return Err(bad(format!(
                "{} bytes is too short for a superblock",
                bytes.len()
            )));
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4"));
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
        if &bytes[0..4] != MAGIC {
            return Err(bad("bad magic".into()));
        }
        let expected = u32_at(68);
        let got = crc32(&bytes[..68]);
        if got != expected {
            return Err(bad(format!(
                "checksum mismatch: {got:#010x}, recorded {expected:#010x}"
            )));
        }
        let format_version = u32_at(4);
        if format_version != Self::FORMAT_VERSION {
            return Err(bad(format!(
                "unsupported format version {format_version} (this build reads {})",
                Self::FORMAT_VERSION
            )));
        }
        let page_bytes = u32_at(8);
        if page_bytes == 0 {
            return Err(bad("zero page size".into()));
        }
        let journal_head = match u64_at(32) {
            NONE => None,
            p => Some(p),
        };
        let ckpt_first = u64_at(40);
        let checkpoint = (ckpt_first != NONE).then(|| CheckpointRef {
            first_page: ckpt_first,
            page_count: u64_at(48),
            byte_len: u64_at(56),
            crc: u32_at(64),
        });
        Ok(Superblock {
            format_version,
            page_bytes,
            sequence: u64_at(16),
            committed_pages: u64_at(24),
            journal_head,
            checkpoint,
        })
    }
}

/// Formats an empty device: writes the sequence-0 superblock into slot 0,
/// a blank page into slot 1, and syncs. Returns the active superblock.
///
/// # Errors
///
/// [`StorageError::InvalidSuperblock`] if the device is not empty;
/// propagates device errors.
pub fn format_device<S: PageStore>(ssd: &mut SimSsd<S>) -> Result<Superblock, StorageError> {
    if ssd.page_count() != 0 {
        return Err(StorageError::InvalidSuperblock(format!(
            "cannot format a device holding {} pages; open it instead",
            ssd.page_count()
        )));
    }
    let sb = Superblock::initial(ssd.page_bytes());
    ssd.append(&sb.encode())?;
    ssd.append(&[])?; // blank slot 1
    ssd.sync()?;
    Ok(sb)
}

/// Reads both superblock slots and returns the valid one with the highest
/// sequence. Unreadable or corrupt slots are skipped — losing one slot to a
/// torn write is the designed-for case, not an error.
///
/// # Errors
///
/// [`StorageError::InvalidSuperblock`] if neither slot validates.
pub fn read_active<S: PageStore>(ssd: &mut SimSsd<S>) -> Result<Superblock, StorageError> {
    let mut best: Option<Superblock> = None;
    let mut reasons = Vec::new();
    for slot in 0..Superblock::SLOTS {
        let candidate = ssd
            .read(PageId(slot))
            .and_then(|page| Superblock::decode(&page));
        match candidate {
            Ok(sb) => {
                if best.as_ref().is_none_or(|b| sb.sequence > b.sequence) {
                    best = Some(sb);
                }
            }
            Err(e) => reasons.push(format!("slot {slot}: {e}")),
        }
    }
    best.ok_or_else(|| {
        StorageError::InvalidSuperblock(format!(
            "no valid superblock slot ({})",
            reasons.join("; ")
        ))
    })
}

/// Commits `sb` atomically: writes it into its slot (always the inactive
/// one, since the sequence advanced) and issues the barrier that makes the
/// flip durable. The caller must already have synced the commit's payload
/// pages (barrier 1); this is barrier 2.
///
/// # Errors
///
/// Propagates device errors.
pub fn write_commit<S: PageStore>(
    ssd: &mut SimSsd<S>,
    sb: &Superblock,
) -> Result<(), StorageError> {
    ssd.write(sb.slot(), &sb.encode())?;
    ssd.sync()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemStore;
    use crate::perf::DevicePerfModel;

    fn ssd() -> SimSsd<MemStore> {
        SimSsd::new(MemStore::new(512), DevicePerfModel::default())
    }

    #[test]
    fn encode_decode_round_trip() {
        let sb = Superblock {
            format_version: Superblock::FORMAT_VERSION,
            page_bytes: 4096,
            sequence: 17,
            committed_pages: 1234,
            journal_head: Some(900),
            checkpoint: Some(CheckpointRef {
                first_page: 1200,
                page_count: 3,
                byte_len: 10_000,
                crc: 0xDEAD_BEEF,
            }),
        };
        assert_eq!(Superblock::decode(&sb.encode()).unwrap(), sb);
        let initial = Superblock::initial(512);
        assert_eq!(Superblock::decode(&initial.encode()).unwrap(), initial);
        assert_eq!(initial.journal_head, None);
        assert_eq!(initial.checkpoint, None);
    }

    #[test]
    fn corruption_is_rejected() {
        let sb = Superblock::initial(4096);
        let mut bytes = sb.encode();
        bytes[20] ^= 1;
        assert!(matches!(
            Superblock::decode(&bytes),
            Err(StorageError::InvalidSuperblock(_))
        ));
        assert!(Superblock::decode(&[0u8; 72]).is_err(), "zero page invalid");
        assert!(Superblock::decode(&[0u8; 10]).is_err(), "short input");
        let mut wrong_version = sb;
        wrong_version.format_version = 99;
        assert!(matches!(
            Superblock::decode(&wrong_version.encode()),
            Err(StorageError::InvalidSuperblock(msg)) if msg.contains("version")
        ));
    }

    #[test]
    fn format_then_read_active() {
        let mut ssd = ssd();
        let sb = format_device(&mut ssd).unwrap();
        assert_eq!(ssd.page_count(), Superblock::SLOTS);
        assert_eq!(read_active(&mut ssd).unwrap(), sb);
        assert_eq!(ssd.ledger().syncs, 1);
        // Formatting twice is refused.
        assert!(matches!(
            format_device(&mut ssd),
            Err(StorageError::InvalidSuperblock(_))
        ));
    }

    #[test]
    fn flip_alternates_slots_and_highest_sequence_wins() {
        let mut ssd = ssd();
        let sb0 = format_device(&mut ssd).unwrap();
        let mut sb1 = sb0.clone();
        sb1.sequence = 1;
        sb1.committed_pages = 2;
        assert_eq!(sb1.slot(), PageId(1));
        write_commit(&mut ssd, &sb1).unwrap();
        assert_eq!(read_active(&mut ssd).unwrap(), sb1);
        let mut sb2 = sb1.clone();
        sb2.sequence = 2;
        assert_eq!(sb2.slot(), PageId(0), "flip returns to slot 0");
        write_commit(&mut ssd, &sb2).unwrap();
        assert_eq!(read_active(&mut ssd).unwrap(), sb2);
    }

    #[test]
    fn torn_slot_falls_back_to_the_surviving_one() {
        let mut ssd = ssd();
        let sb0 = format_device(&mut ssd).unwrap();
        let mut sb1 = sb0.clone();
        sb1.sequence = 1;
        write_commit(&mut ssd, &sb1).unwrap();
        // Tear the newer slot behind the controller: recovery must fall
        // back to the older superblock rather than fail.
        ssd.store_mut().write_page(PageId(1), b"torn!").unwrap();
        assert_eq!(read_active(&mut ssd).unwrap(), sb0);
        // Both slots gone -> hard error.
        ssd.store_mut().write_page(PageId(0), b"gone").unwrap();
        assert!(matches!(
            read_active(&mut ssd),
            Err(StorageError::InvalidSuperblock(_))
        ));
    }
}
