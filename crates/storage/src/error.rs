use std::error::Error;
use std::fmt;
use std::io;
use std::sync::Arc;

/// Error accessing the simulated storage device.
#[derive(Debug, Clone)]
pub enum StorageError {
    /// A page id beyond the device's current extent was accessed.
    OutOfRange {
        /// The offending page id.
        page: u64,
        /// Pages currently allocated.
        extent: u64,
    },
    /// Data larger than one page was written.
    Oversized {
        /// Bytes offered.
        got: usize,
        /// Page capacity.
        page_bytes: usize,
    },
    /// A page's content failed checksum verification: what the device reads
    /// back is not what was written.
    Corrupt {
        /// The corrupt page.
        page: u64,
        /// Checksum recorded at write time.
        expected: u32,
        /// Checksum of the data actually read.
        got: u32,
    },
    /// A read attempt failed transiently (flaky channel, voltage-shift
    /// retry); re-reading the page may succeed.
    TransientRead {
        /// The page whose read failed.
        page: u64,
    },
    /// The page is quarantined: an earlier scrub found it corrupt or
    /// unreadable and the controller now fails reads up front — no flash
    /// access, no retries — until the page is rewritten.
    Quarantined {
        /// The quarantined page.
        page: u64,
    },
    /// The device crashed (simulated power loss): this and every subsequent
    /// operation fails until the store is reopened and recovered.
    Crashed {
        /// The numbered operation at which the crash was injected.
        op: u64,
    },
    /// A superblock failed validation: bad magic, unsupported format
    /// version, page-size mismatch, or checksum failure.
    InvalidSuperblock(String),
    /// An underlying I/O error from a file-backed store.
    Io(Arc<io::Error>),
}

impl StorageError {
    /// Whether retrying the same operation may succeed (transient faults).
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::TransientRead { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfRange { page, extent } => {
                write!(f, "page {page} beyond device extent of {extent} pages")
            }
            StorageError::Oversized { got, page_bytes } => {
                write!(f, "write of {got} bytes exceeds page size {page_bytes}")
            }
            StorageError::Corrupt {
                page,
                expected,
                got,
            } => write!(
                f,
                "page {page} is corrupt: checksum {got:#010x}, expected {expected:#010x}"
            ),
            StorageError::TransientRead { page } => {
                write!(
                    f,
                    "transient read failure on page {page} (retry may succeed)"
                )
            }
            StorageError::Quarantined { page } => {
                write!(
                    f,
                    "page {page} is quarantined (failed scrub verification); \
                     rewrite it to restore access"
                )
            }
            StorageError::Crashed { op } => {
                write!(f, "device crashed at operation {op}; reopen and recover")
            }
            StorageError::InvalidSuperblock(reason) => {
                write!(f, "invalid superblock: {reason}")
            }
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(Arc::new(e))
    }
}

/// An invalid device or policy configuration, rejected before it takes
/// effect (e.g. a [`RetryPolicy`](crate::RetryPolicy) allowing zero read
/// attempts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl ConfigError {
    /// A configuration error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        ConfigError(reason.into())
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::OutOfRange { page: 9, extent: 4 };
        assert!(e.to_string().contains('9'));
        let e = StorageError::Oversized {
            got: 5000,
            page_bytes: 4096,
        };
        assert!(e.to_string().contains("4096"));
    }

    #[test]
    fn io_error_preserves_source() {
        let e = StorageError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn corruption_display_shows_both_checksums() {
        let e = StorageError::Corrupt {
            page: 3,
            expected: 0xDEAD_BEEF,
            got: 0x0BAD_F00D,
        };
        let s = e.to_string();
        assert!(s.contains("0xdeadbeef") && s.contains("0x0badf00d"), "{s}");
        assert!(!e.is_transient());
        assert!(StorageError::TransientRead { page: 1 }.is_transient());
    }

    #[test]
    fn crash_and_superblock_display() {
        let e = StorageError::Crashed { op: 17 };
        assert!(e.to_string().contains("17"), "{e}");
        assert!(!e.is_transient(), "a crash is not retryable in-process");
        let e = StorageError::InvalidSuperblock("bad magic".into());
        assert!(e.to_string().contains("bad magic"), "{e}");
    }

    #[test]
    fn error_is_send_sync_clone() {
        fn check<T: Send + Sync + Clone>() {}
        check::<StorageError>();
        check::<ConfigError>();
    }

    #[test]
    fn quarantine_is_not_transient() {
        let e = StorageError::Quarantined { page: 4 };
        assert!(e.to_string().contains("quarantined"), "{e}");
        assert!(
            !e.is_transient(),
            "retrying a quarantined page cannot succeed until a rewrite"
        );
    }

    #[test]
    fn config_error_display_carries_the_reason() {
        let e = ConfigError::new("zero attempts");
        assert!(e.to_string().contains("zero attempts"), "{e}");
    }
}
