//! Deterministic fault injection for the simulated device.
//!
//! [`FaultyStore`] wraps any [`PageStore`] and injects storage faults
//! according to a seeded [`FaultPlan`]: at-rest bit rot (a sticky bit flip
//! applied on every read of an affected page), torn writes (only a prefix of
//! the page is persisted), and transient read episodes (a page fails a fixed
//! number of consecutive read attempts, then recovers — modeling a flaky
//! channel or a read needing voltage-shift retries).
//!
//! Faults are drawn from a SplitMix64 stream seeded by the plan, so a given
//! plan over a given write sequence injects exactly the same faults every
//! run — fault drills and recovery tests are fully reproducible. Every
//! injected fault is also recorded, so tests can assert that recovery
//! machinery found *exactly* the faults that were planted.

use std::collections::BTreeMap;
use std::sync::Mutex;

use bytes::Bytes;

use crate::device::{PageId, PageStore};
use crate::error::StorageError;
use crate::rng::SplitMix64;

/// One kind of injected storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// At-rest bit rot: bit `bit` (little-endian bit index into the page) is
    /// flipped on every subsequent read of the page.
    BitRot {
        /// Bit index within the page (`byte * 8 + bit_in_byte`).
        bit: u64,
    },
    /// Torn write: only the first `valid_bytes` of the written data are
    /// persisted; the tail of the page reads back as zeros.
    TornWrite {
        /// Bytes of the intended write that actually landed.
        valid_bytes: usize,
    },
    /// Transient read episode: the next `failures` read attempts of the page
    /// fail with [`StorageError::TransientRead`], after which reads succeed.
    TransientRead {
        /// Consecutive attempts that fail before the page recovers.
        failures: u32,
    },
    /// Firmware-bug drill: every read of the page panics instead of
    /// returning. Used to prove that a host-side scheduler contains worker
    /// panics — the page's *content* is intact, so it is excluded from
    /// [`FaultyStore::corrupted_pages`].
    ReadPanic,
}

/// A record of one fault the store actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The affected page.
    pub page: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// A seeded, deterministic plan of which faults to inject.
///
/// A plan combines per-write probabilities (each page written draws its
/// faults from the seeded stream) with an explicit schedule of faults for
/// specific pages. The default plan injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    bit_rot_rate: f64,
    torn_write_rate: f64,
    transient_rate: f64,
    transient_failures: u32,
    scheduled: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled yet.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Each written page rots one random bit with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    #[must_use]
    pub fn with_bit_rot_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "bit rot rate must be in [0,1]");
        self.bit_rot_rate = rate;
        self
    }

    /// Each write is torn (prefix-only) with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    #[must_use]
    pub fn with_torn_write_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "torn write rate must be in [0,1]"
        );
        self.torn_write_rate = rate;
        self
    }

    /// Each written page starts a transient episode with probability `rate`:
    /// its first `failures` read attempts fail, then it recovers.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or `failures` is zero.
    #[must_use]
    pub fn with_transient_rate(mut self, rate: f64, failures: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "transient rate must be in [0,1]"
        );
        assert!(
            failures > 0,
            "a transient episode needs at least one failure"
        );
        self.transient_rate = rate;
        self.transient_failures = failures;
        self
    }

    /// Explicitly schedules `kind` for page `page`, independent of the
    /// probabilistic rates. [`FaultKind::TornWrite`] applies to the next
    /// write of that page; the other kinds arm immediately.
    #[must_use]
    pub fn with_scheduled(mut self, page: u64, kind: FaultKind) -> Self {
        self.scheduled.push((page, kind));
        self
    }
}

#[derive(Debug)]
struct FaultState {
    rng: SplitMix64,
    /// Sticky bit rot: page → bit flipped on every read.
    rot: BTreeMap<u64, u64>,
    /// Active transient episodes: page → remaining failing attempts.
    transient: BTreeMap<u64, u32>,
    /// Scheduled torn writes not yet consumed: page → valid prefix bytes.
    torn_pending: BTreeMap<u64, usize>,
    /// Pages whose reads panic (firmware-bug drill).
    panicking: std::collections::BTreeSet<u64>,
    /// Everything injected so far, in injection order.
    injected: Vec<InjectedFault>,
}

/// A [`PageStore`] wrapper that injects faults per a [`FaultPlan`].
///
/// Reads are `&self`, so fault state (episode countdowns, the RNG) lives
/// behind a mutex; the wrapper stays `Send + Sync` like any other store.
#[derive(Debug)]
pub struct FaultyStore<S> {
    inner: S,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl<S: PageStore> FaultyStore<S> {
    /// Wraps `inner`, arming the plan's scheduled faults.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        let mut state = FaultState {
            rng: SplitMix64::new(plan.seed),
            rot: BTreeMap::new(),
            transient: BTreeMap::new(),
            torn_pending: BTreeMap::new(),
            panicking: std::collections::BTreeSet::new(),
            injected: Vec::new(),
        };
        for &(page, kind) in &plan.scheduled {
            match kind {
                FaultKind::BitRot { bit } => {
                    state.rot.insert(page, bit);
                }
                FaultKind::TransientRead { failures } => {
                    state.transient.insert(page, failures);
                }
                FaultKind::TornWrite { valid_bytes } => {
                    state.torn_pending.insert(page, valid_bytes);
                }
                FaultKind::ReadPanic => {
                    state.panicking.insert(page);
                }
            }
            state.injected.push(InjectedFault { page, kind });
        }
        FaultyStore {
            inner,
            plan,
            state: Mutex::new(state),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, discarding fault state.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Every fault injected so far, in injection order.
    pub fn injected(&self) -> Vec<InjectedFault> {
        self.lock().injected.clone()
    }

    /// Pages whose *content* is corrupt (bit rot or torn writes), sorted.
    /// Transient episodes are excluded: those pages hold good data and
    /// recover by retrying.
    pub fn corrupted_pages(&self) -> Vec<u64> {
        let st = self.lock();
        let mut pages: Vec<u64> = st.rot.keys().copied().collect();
        pages.extend(
            st.injected
                .iter()
                .filter(|f| matches!(f.kind, FaultKind::TornWrite { .. }))
                .map(|f| f.page),
        );
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Draws write-time faults for page `page` carrying `data`, returning
    /// how many bytes of the write should actually be persisted.
    fn draw_write_faults(&mut self, page: u64, data_len: usize) -> usize {
        let page_bits = (self.inner.page_bytes() as u64) * 8;
        let st = self
            .state
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);

        // A scheduled torn write takes precedence over the probabilistic draw.
        let mut valid = data_len;
        if let Some(prefix) = st.torn_pending.remove(&page) {
            valid = prefix.min(data_len);
        } else if st.rng.next_f64() < self.plan.torn_write_rate && data_len > 1 {
            valid = 1 + st.rng.below(data_len as u64 - 1) as usize;
            let kind = FaultKind::TornWrite { valid_bytes: valid };
            st.injected.push(InjectedFault { page, kind });
        }
        if st.rng.next_f64() < self.plan.bit_rot_rate {
            let bit = st.rng.below(page_bits);
            st.rot.insert(page, bit);
            st.injected.push(InjectedFault {
                page,
                kind: FaultKind::BitRot { bit },
            });
        }
        if st.rng.next_f64() < self.plan.transient_rate {
            let failures = self.plan.transient_failures;
            st.transient.insert(page, failures);
            st.injected.push(InjectedFault {
                page,
                kind: FaultKind::TransientRead { failures },
            });
        }
        valid
    }
}

impl<S: PageStore> PageStore for FaultyStore<S> {
    fn page_bytes(&self) -> usize {
        self.inner.page_bytes()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError> {
        // The guard temporary drops when the condition finishes evaluating,
        // so the panic below never poisons the fault-state mutex itself.
        if self.lock().panicking.contains(&id.0) {
            panic!("injected firmware panic reading page {}", id.0);
        }
        {
            let mut st = self.lock();
            if let Some(remaining) = st.transient.get_mut(&id.0) {
                if *remaining > 0 {
                    *remaining -= 1;
                    return Err(StorageError::TransientRead { page: id.0 });
                }
                st.transient.remove(&id.0);
            }
        }
        let page = self.inner.read_page(id)?;
        let rot_bit = self.lock().rot.get(&id.0).copied();
        match rot_bit {
            Some(bit) => {
                let mut buf = page.to_vec();
                let bit = bit % (buf.len() as u64 * 8);
                buf[(bit / 8) as usize] ^= 1 << (bit % 8);
                Ok(Bytes::from(buf))
            }
            None => Ok(page),
        }
    }

    fn append_page(&mut self, data: &[u8]) -> Result<PageId, StorageError> {
        let page = self.inner.page_count();
        let valid = self.draw_write_faults(page, data.len());
        let id = self.inner.append_page(&data[..valid])?;
        debug_assert_eq!(id.0, page, "append id must match predicted page");
        Ok(id)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        let valid = self.draw_write_faults(id.0, data.len());
        self.inner.write_page(id, &data[..valid])
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.inner.sync()
    }

    fn truncate(&mut self, pages: u64) -> Result<(), StorageError> {
        self.inner.truncate(pages)?;
        // Fault state attached to dropped pages dies with them.
        let st = self
            .state
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.rot.retain(|&p, _| p < pages);
        st.transient.retain(|&p, _| p < pages);
        st.torn_pending.retain(|&p, _| p < pages);
        st.panicking.retain(|&p| p < pages);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemStore;

    fn store_with(plan: FaultPlan) -> FaultyStore<MemStore> {
        FaultyStore::new(MemStore::new(256), plan)
    }

    #[test]
    fn no_faults_is_a_transparent_wrapper() {
        let mut s = store_with(FaultPlan::default());
        let id = s.append_page(b"payload").unwrap();
        assert_eq!(&s.read_page(id).unwrap()[..7], b"payload");
        assert!(s.injected().is_empty());
        assert!(s.corrupted_pages().is_empty());
    }

    #[test]
    fn scheduled_bit_rot_flips_the_same_bit_every_read() {
        let plan = FaultPlan::seeded(1).with_scheduled(0, FaultKind::BitRot { bit: 13 });
        let mut s = store_with(plan);
        let id = s.append_page(&[0u8; 256]).unwrap();
        let a = s.read_page(id).unwrap();
        let b = s.read_page(id).unwrap();
        assert_eq!(a, b, "bit rot must be sticky, not random per read");
        assert_eq!(a[1], 1 << 5, "bit 13 is byte 1, bit 5");
        assert_eq!(s.corrupted_pages(), vec![0]);
    }

    #[test]
    fn scheduled_torn_write_persists_only_the_prefix() {
        let plan = FaultPlan::seeded(2).with_scheduled(0, FaultKind::TornWrite { valid_bytes: 3 });
        let mut s = store_with(plan);
        let id = s.append_page(b"abcdefgh").unwrap();
        let page = s.read_page(id).unwrap();
        assert_eq!(&page[..3], b"abc");
        assert!(
            page[3..].iter().all(|&x| x == 0),
            "torn tail must read as zeros"
        );
        // The tear is consumed: a rewrite lands in full.
        s.write_page(id, b"abcdefgh").unwrap();
        assert_eq!(&s.read_page(id).unwrap()[..8], b"abcdefgh");
    }

    #[test]
    fn transient_episode_fails_then_recovers() {
        let plan = FaultPlan::seeded(3).with_scheduled(0, FaultKind::TransientRead { failures: 2 });
        let mut s = store_with(plan);
        let id = s.append_page(b"flaky").unwrap();
        assert!(matches!(
            s.read_page(id),
            Err(StorageError::TransientRead { page: 0 })
        ));
        assert!(matches!(
            s.read_page(id),
            Err(StorageError::TransientRead { page: 0 })
        ));
        assert_eq!(&s.read_page(id).unwrap()[..5], b"flaky");
        assert_eq!(
            &s.read_page(id).unwrap()[..5],
            b"flaky",
            "recovery is permanent"
        );
    }

    #[test]
    fn probabilistic_plans_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::seeded(seed)
                .with_bit_rot_rate(0.3)
                .with_torn_write_rate(0.2)
                .with_transient_rate(0.2, 2);
            let mut s = store_with(plan);
            for i in 0..50 {
                s.append_page(format!("page number {i}").as_bytes())
                    .unwrap();
            }
            s.injected()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must inject identical faults");
        assert!(
            !a.is_empty(),
            "rates this high must inject something in 50 pages"
        );
        let c = run(8);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn rates_of_one_hit_every_write() {
        let plan = FaultPlan::seeded(4).with_bit_rot_rate(1.0);
        let mut s = store_with(plan);
        for _ in 0..10 {
            s.append_page(b"x").unwrap();
        }
        assert_eq!(s.corrupted_pages().len(), 10);
    }

    #[test]
    fn scheduled_read_panic_fires_deterministically() {
        let plan = FaultPlan::seeded(9).with_scheduled(1, FaultKind::ReadPanic);
        let mut s = store_with(plan);
        let ok = s.append_page(b"fine").unwrap();
        let doomed = s.append_page(b"kaboom").unwrap();
        assert_eq!(&s.read_page(ok).unwrap()[..4], b"fine");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.read_page(doomed);
        }));
        assert!(caught.is_err(), "the scheduled page must panic on read");
        // The store survives its own panic: other pages keep reading, the
        // doomed page keeps panicking, and content-corruption reports are
        // unaffected.
        assert_eq!(&s.read_page(ok).unwrap()[..4], b"fine");
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.read_page(doomed);
        }))
        .is_err());
        assert!(s.corrupted_pages().is_empty());
        assert_eq!(s.injected().len(), 1);
    }

    #[test]
    fn out_of_range_passes_through() {
        let s = store_with(FaultPlan::default());
        assert!(matches!(
            s.read_page(PageId(0)),
            Err(StorageError::OutOfRange { .. })
        ));
    }
}
