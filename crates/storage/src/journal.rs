//! Journaled commit manifest: a backward-chained list of manifest pages
//! describing every committed store transition.
//!
//! Three record kinds share one chain. A **commit** lists the data pages an
//! ingest made durable plus its line/byte totals. A **seal** freezes a set
//! of data pages into an immutable segment and records the segment's CRC
//! summary. A **drop** retires whole sealed segments (retention). Pages
//! chain newest → oldest via a `prev` pointer, with the newest page of each
//! record flagged as that record's head; the superblock's `journal_head`
//! points at the newest head. Recovery walks the chain from the head and
//! reconstructs the full record sequence without scanning the device.
//!
//! The on-page layout is version 1 with the record kind stored in
//! previously-zero flag bits, so kind 0 (commit) is byte-identical to the
//! pre-segment format and old chains replay unchanged.

use crate::crc::crc32;
use crate::device::{PageId, PageStore, SimSsd};
use crate::error::StorageError;

/// One committed ingest transaction, as reconstructed from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// The commit's superblock sequence number.
    pub sequence: u64,
    /// Data pages this commit made durable, in ingest order.
    pub data_pages: Vec<u64>,
    /// Lines ingested by this commit.
    pub lines: u64,
    /// Raw bytes ingested by this commit.
    pub raw_bytes: u64,
    /// Compressed bytes across this commit's data pages.
    pub compressed_bytes: u64,
}

/// One sealed segment: an immutable, individually-verifiable set of data
/// pages with its own CRC summary and totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealRecord {
    /// The sealing commit's superblock sequence number.
    pub sequence: u64,
    /// Monotonic segment id (never reused, even after a drop).
    pub segment_id: u64,
    /// CRC32 over the little-endian per-page CRC32s of `pages`, in order —
    /// a cheap whole-segment summary computed without re-reading data.
    pub crc: u32,
    /// Member data pages, in ingest order.
    pub pages: Vec<u64>,
    /// Lines held by this segment.
    pub lines: u64,
    /// Raw bytes held by this segment.
    pub raw_bytes: u64,
    /// Compressed bytes across this segment's pages.
    pub compressed_bytes: u64,
}

/// One retention drop: sealed segments retired crash-consistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropRecord {
    /// The dropping commit's superblock sequence number.
    pub sequence: u64,
    /// Ids of the sealed segments being dropped.
    pub segments: Vec<u64>,
}

/// Any journaled store transition, as reconstructed by [`replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// An ingest commit.
    Commit(CommitRecord),
    /// A segment seal.
    Seal(SealRecord),
    /// A retention drop.
    Drop(DropRecord),
}

const MAGIC: &[u8; 4] = b"MLJR";
const VERSION: u32 = 1;
/// magic(4) + version(4) + sequence(8) + prev(8) + flags(4) + count(4)
/// + lines(8) + raw(8) + compressed(8)
const HEADER_BYTES: usize = 56;
const TRAILER_BYTES: usize = 4;
const FLAG_COMMIT_HEAD: u32 = 1;
/// Record kind lives in flag bits 1..=2: 0 = commit (the legacy layout),
/// 1 = seal, 2 = drop.
const KIND_SHIFT: u32 = 1;
const KIND_MASK: u32 = 0b11;
const KIND_COMMIT: u32 = 0;
const KIND_SEAL: u32 = 1;
const KIND_DROP: u32 = 2;
const NONE: u64 = u64::MAX;
/// A seal record's first two entries are metadata: `[segment_id, crc]`.
const SEAL_META_ENTRIES: usize = 2;

/// Data-page entries that fit in one manifest page.
fn capacity(page_bytes: usize) -> usize {
    assert!(
        page_bytes > HEADER_BYTES + TRAILER_BYTES + 8,
        "page too small for a manifest record"
    );
    (page_bytes - HEADER_BYTES - TRAILER_BYTES) / 8
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestPage {
    sequence: u64,
    prev: Option<u64>,
    commit_head: bool,
    kind: u32,
    entries: Vec<u64>,
    lines: u64,
    raw_bytes: u64,
    compressed_bytes: u64,
}

impl ManifestPage {
    fn encode(&self, page_bytes: usize) -> Vec<u8> {
        assert!(self.entries.len() <= capacity(page_bytes));
        let mut buf = vec![0u8; HEADER_BYTES + self.entries.len() * 8 + TRAILER_BYTES];
        buf[0..4].copy_from_slice(MAGIC);
        buf[4..8].copy_from_slice(&VERSION.to_le_bytes());
        buf[8..16].copy_from_slice(&self.sequence.to_le_bytes());
        buf[16..24].copy_from_slice(&self.prev.unwrap_or(NONE).to_le_bytes());
        let mut flags = (self.kind & KIND_MASK) << KIND_SHIFT;
        if self.commit_head {
            flags |= FLAG_COMMIT_HEAD;
        }
        buf[24..28].copy_from_slice(&flags.to_le_bytes());
        buf[28..32].copy_from_slice(&(self.entries.len() as u32).to_le_bytes());
        buf[32..40].copy_from_slice(&self.lines.to_le_bytes());
        buf[40..48].copy_from_slice(&self.raw_bytes.to_le_bytes());
        buf[48..56].copy_from_slice(&self.compressed_bytes.to_le_bytes());
        for (i, &page) in self.entries.iter().enumerate() {
            let off = HEADER_BYTES + i * 8;
            buf[off..off + 8].copy_from_slice(&page.to_le_bytes());
        }
        let body_end = buf.len() - TRAILER_BYTES;
        let checksum = crc32(&buf[..body_end]);
        buf[body_end..].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    fn decode(bytes: &[u8]) -> Result<Self, StorageError> {
        let bad =
            |reason: String| StorageError::InvalidSuperblock(format!("manifest page: {reason}"));
        if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
            return Err(bad("too short".into()));
        }
        if &bytes[0..4] != MAGIC {
            return Err(bad("bad magic".into()));
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4"));
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
        let version = u32_at(4);
        if version != VERSION {
            return Err(bad(format!("unsupported version {version}")));
        }
        let count = u32_at(28) as usize;
        let body_end = HEADER_BYTES + count * 8;
        if bytes.len() < body_end + TRAILER_BYTES {
            return Err(bad(format!("{count} entries overflow the page")));
        }
        let expected = u32_at(body_end);
        let got = crc32(&bytes[..body_end]);
        if got != expected {
            return Err(bad(format!(
                "checksum mismatch: {got:#010x}, recorded {expected:#010x}"
            )));
        }
        let flags = u32_at(24);
        let kind = (flags >> KIND_SHIFT) & KIND_MASK;
        if kind > KIND_DROP {
            return Err(bad(format!("unknown record kind {kind}")));
        }
        let prev = match u64_at(16) {
            NONE => None,
            p => Some(p),
        };
        let entries = (0..count).map(|i| u64_at(HEADER_BYTES + i * 8)).collect();
        Ok(ManifestPage {
            sequence: u64_at(8),
            prev,
            commit_head: flags & FLAG_COMMIT_HEAD != 0,
            kind,
            entries,
            lines: u64_at(32),
            raw_bytes: u64_at(40),
            compressed_bytes: u64_at(48),
        })
    }
}

/// Appends the manifest pages for one record, chained onto `prev_head`, and
/// returns the new journal head (the record's head page). Totals live on
/// the head page only; overflow pages carry entries.
///
/// # Errors
///
/// Propagates device errors.
pub fn append_record<S: PageStore>(
    ssd: &mut SimSsd<S>,
    prev_head: Option<u64>,
    record: &JournalRecord,
) -> Result<u64, StorageError> {
    match record {
        JournalRecord::Commit(c) => append_parts(
            ssd,
            prev_head,
            KIND_COMMIT,
            c.sequence,
            &c.data_pages,
            [c.lines, c.raw_bytes, c.compressed_bytes],
        ),
        JournalRecord::Seal(s) => {
            // Meta prefix first: chunk reassembly concatenates entries in
            // order, so the prefix survives multi-page spills intact.
            let mut entries = Vec::with_capacity(SEAL_META_ENTRIES + s.pages.len());
            entries.push(s.segment_id);
            entries.push(u64::from(s.crc));
            entries.extend_from_slice(&s.pages);
            append_parts(
                ssd,
                prev_head,
                KIND_SEAL,
                s.sequence,
                &entries,
                [s.lines, s.raw_bytes, s.compressed_bytes],
            )
        }
        JournalRecord::Drop(d) => append_parts(
            ssd,
            prev_head,
            KIND_DROP,
            d.sequence,
            &d.segments,
            [0, 0, 0],
        ),
    }
}

/// Appends the manifest pages for one ingest commit. Equivalent to
/// [`append_record`] with [`JournalRecord::Commit`]; kept for the layout's
/// original (pre-segment) callers.
///
/// # Errors
///
/// Propagates device errors.
pub fn append_commit<S: PageStore>(
    ssd: &mut SimSsd<S>,
    prev_head: Option<u64>,
    record: &CommitRecord,
) -> Result<u64, StorageError> {
    append_parts(
        ssd,
        prev_head,
        KIND_COMMIT,
        record.sequence,
        &record.data_pages,
        [record.lines, record.raw_bytes, record.compressed_bytes],
    )
}

fn append_parts<S: PageStore>(
    ssd: &mut SimSsd<S>,
    prev_head: Option<u64>,
    kind: u32,
    sequence: u64,
    entries: &[u64],
    totals: [u64; 3],
) -> Result<u64, StorageError> {
    let cap = capacity(ssd.page_bytes());
    let mut chunks: Vec<&[u64]> = entries.chunks(cap).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let last = chunks.len() - 1;
    let mut prev = prev_head;
    let mut head = 0u64;
    for (i, chunk) in chunks.into_iter().enumerate() {
        let is_head = i == last;
        let page = ManifestPage {
            sequence,
            prev,
            commit_head: is_head,
            kind,
            entries: chunk.to_vec(),
            lines: if is_head { totals[0] } else { 0 },
            raw_bytes: if is_head { totals[1] } else { 0 },
            compressed_bytes: if is_head { totals[2] } else { 0 },
        };
        let id = ssd.append(&page.encode(ssd.page_bytes()))?;
        prev = Some(id.0);
        head = id.0;
    }
    Ok(head)
}

/// Walks the manifest chain from `head` and reconstructs every record,
/// oldest first. The chain lies entirely below the committed frontier, so
/// any decode failure here means real corruption, not a crash artifact.
///
/// # Errors
///
/// Propagates device errors; [`StorageError::InvalidSuperblock`] for a
/// corrupt or inconsistent chain.
pub fn replay<S: PageStore>(
    ssd: &mut SimSsd<S>,
    head: Option<u64>,
) -> Result<Vec<JournalRecord>, StorageError> {
    let mut records = Vec::new();
    let mut cursor = head;
    // Chunks of the record currently being collected, newest chunk first.
    let mut pending: Vec<ManifestPage> = Vec::new();
    while let Some(page_id) = cursor {
        let raw = ssd.read_dependent(PageId(page_id))?;
        let page = ManifestPage::decode(&raw)?;
        if page.commit_head && !pending.is_empty() {
            records.push(finish_record(std::mem::take(&mut pending))?);
        }
        if !page.commit_head && pending.is_empty() {
            return Err(StorageError::InvalidSuperblock(format!(
                "manifest chain: page {page_id} is an overflow page with no head"
            )));
        }
        cursor = page.prev;
        pending.push(page);
    }
    if !pending.is_empty() {
        records.push(finish_record(pending)?);
    }
    records.reverse();
    Ok(records)
}

/// Assembles one record from its chunks (newest first, head chunk leading).
fn finish_record(chunks: Vec<ManifestPage>) -> Result<JournalRecord, StorageError> {
    let head = &chunks[0];
    debug_assert!(head.commit_head);
    let sequence = head.sequence;
    if chunks
        .iter()
        .any(|c| c.sequence != sequence || c.kind != head.kind)
    {
        return Err(StorageError::InvalidSuperblock(format!(
            "manifest chain: mixed sequences or kinds within record {sequence}"
        )));
    }
    let mut entries = Vec::new();
    for chunk in chunks.iter().rev() {
        entries.extend_from_slice(&chunk.entries);
    }
    match head.kind {
        KIND_COMMIT => Ok(JournalRecord::Commit(CommitRecord {
            sequence,
            data_pages: entries,
            lines: head.lines,
            raw_bytes: head.raw_bytes,
            compressed_bytes: head.compressed_bytes,
        })),
        KIND_SEAL => {
            if entries.len() < SEAL_META_ENTRIES {
                return Err(StorageError::InvalidSuperblock(format!(
                    "manifest chain: seal record {sequence} is missing its metadata"
                )));
            }
            let segment_id = entries[0];
            let crc = u32::try_from(entries[1]).map_err(|_| {
                StorageError::InvalidSuperblock(format!(
                    "manifest chain: seal record {sequence} has an out-of-range crc"
                ))
            })?;
            Ok(JournalRecord::Seal(SealRecord {
                sequence,
                segment_id,
                crc,
                pages: entries[SEAL_META_ENTRIES..].to_vec(),
                lines: head.lines,
                raw_bytes: head.raw_bytes,
                compressed_bytes: head.compressed_bytes,
            }))
        }
        KIND_DROP => Ok(JournalRecord::Drop(DropRecord {
            sequence,
            segments: entries,
        })),
        other => unreachable!("decode admitted unknown kind {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemStore;
    use crate::perf::DevicePerfModel;

    fn ssd(page_bytes: usize) -> SimSsd<MemStore> {
        SimSsd::new(MemStore::new(page_bytes), DevicePerfModel::default())
    }

    fn record(seq: u64, pages: std::ops::Range<u64>) -> CommitRecord {
        CommitRecord {
            sequence: seq,
            data_pages: pages.collect(),
            lines: seq * 10,
            raw_bytes: seq * 1000,
            compressed_bytes: seq * 100,
        }
    }

    fn seal(seq: u64, segment_id: u64, pages: std::ops::Range<u64>) -> SealRecord {
        SealRecord {
            sequence: seq,
            segment_id,
            crc: 0xDEAD_BEEF,
            pages: pages.collect(),
            lines: seq * 10,
            raw_bytes: seq * 1000,
            compressed_bytes: seq * 100,
        }
    }

    #[test]
    fn single_commit_round_trips() {
        let mut ssd = ssd(512);
        let rec = record(1, 10..20);
        let head = append_commit(&mut ssd, None, &rec).unwrap();
        assert_eq!(
            replay(&mut ssd, Some(head)).unwrap(),
            vec![JournalRecord::Commit(rec)]
        );
        assert_eq!(replay(&mut ssd, None).unwrap(), vec![]);
    }

    #[test]
    fn commits_chain_and_replay_oldest_first() {
        let mut ssd = ssd(512);
        let recs: Vec<CommitRecord> = (1..=5).map(|s| record(s, s * 100..s * 100 + 7)).collect();
        let mut head = None;
        for rec in &recs {
            head = Some(append_commit(&mut ssd, head, rec).unwrap());
        }
        let expected: Vec<JournalRecord> = recs.into_iter().map(JournalRecord::Commit).collect();
        assert_eq!(replay(&mut ssd, head).unwrap(), expected);
    }

    #[test]
    fn large_commits_spill_over_multiple_pages() {
        // 512-byte pages hold (512-60)/8 = 56 entries; 200 entries → 4 pages.
        let mut ssd = ssd(512);
        let rec = record(1, 0..200);
        let head = append_commit(&mut ssd, None, &rec).unwrap();
        assert_eq!(ssd.page_count(), 4);
        let more = record(2, 500..501);
        let head = append_commit(&mut ssd, Some(head), &more).unwrap();
        assert_eq!(
            replay(&mut ssd, Some(head)).unwrap(),
            vec![JournalRecord::Commit(rec), JournalRecord::Commit(more)],
            "multi-page commit must reassemble in order"
        );
    }

    #[test]
    fn empty_commit_still_journals() {
        let mut ssd = ssd(512);
        let rec = CommitRecord {
            sequence: 3,
            data_pages: vec![],
            lines: 0,
            raw_bytes: 0,
            compressed_bytes: 0,
        };
        let head = append_commit(&mut ssd, None, &rec).unwrap();
        assert_eq!(
            replay(&mut ssd, Some(head)).unwrap(),
            vec![JournalRecord::Commit(rec)]
        );
    }

    #[test]
    fn seal_and_drop_records_round_trip() {
        let mut ssd = ssd(512);
        let commit = record(1, 0..6);
        let sealed = seal(1, 0, 0..6);
        let dropped = DropRecord {
            sequence: 2,
            segments: vec![0],
        };
        let mut head = Some(append_commit(&mut ssd, None, &commit).unwrap());
        head = Some(append_record(&mut ssd, head, &JournalRecord::Seal(sealed.clone())).unwrap());
        head = Some(append_record(&mut ssd, head, &JournalRecord::Drop(dropped.clone())).unwrap());
        assert_eq!(
            replay(&mut ssd, head).unwrap(),
            vec![
                JournalRecord::Commit(commit),
                JournalRecord::Seal(sealed),
                JournalRecord::Drop(dropped),
            ]
        );
    }

    #[test]
    fn large_seal_spills_and_keeps_its_meta_prefix() {
        // 56 entries per 512-byte page; 2 meta + 120 pages → 3 manifest pages.
        let mut ssd = ssd(512);
        let sealed = seal(4, 17, 1000..1120);
        let head = append_record(&mut ssd, None, &JournalRecord::Seal(sealed.clone())).unwrap();
        assert_eq!(ssd.page_count(), 3);
        assert_eq!(
            replay(&mut ssd, Some(head)).unwrap(),
            vec![JournalRecord::Seal(sealed)],
            "seal metadata must survive chunk reassembly"
        );
    }

    #[test]
    fn corrupt_manifest_is_a_hard_error() {
        let mut ssd = ssd(512);
        let head = append_commit(&mut ssd, None, &record(1, 0..5)).unwrap();
        ssd.store_mut()
            .write_page(PageId(head), b"smashed")
            .unwrap();
        assert!(replay(&mut ssd, Some(head)).is_err());
    }

    #[test]
    fn truncated_seal_is_a_hard_error() {
        let mut ssd = ssd(512);
        let sealed = SealRecord {
            pages: vec![],
            ..seal(1, 3, 0..0)
        };
        // Hand-roll a seal head page whose entries omit the meta prefix.
        let page = ManifestPage {
            sequence: sealed.sequence,
            prev: None,
            commit_head: true,
            kind: KIND_SEAL,
            entries: vec![sealed.segment_id], // missing the crc entry
            lines: 0,
            raw_bytes: 0,
            compressed_bytes: 0,
        };
        let id = ssd.append(&page.encode(ssd.page_bytes())).unwrap();
        let err = replay(&mut ssd, Some(id.0)).unwrap_err();
        assert!(err.to_string().contains("metadata"), "{err}");
    }
}
