//! Journaled commit manifest: a backward-chained list of manifest pages
//! describing every committed ingest transaction.
//!
//! Each commit appends one or more manifest pages listing the data pages it
//! made durable plus its line/byte totals. Pages chain newest → oldest via
//! a `prev` pointer, with the newest page of each commit flagged as that
//! commit's head; the superblock's `journal_head` points at the newest
//! head. Recovery walks the chain from the head and reconstructs the full
//! sequence of commits without scanning the device.

use crate::crc::crc32;
use crate::device::{PageId, PageStore, SimSsd};
use crate::error::StorageError;

/// One committed transaction, as reconstructed from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// The commit's superblock sequence number.
    pub sequence: u64,
    /// Data pages this commit made durable, in ingest order.
    pub data_pages: Vec<u64>,
    /// Lines ingested by this commit.
    pub lines: u64,
    /// Raw bytes ingested by this commit.
    pub raw_bytes: u64,
    /// Compressed bytes across this commit's data pages.
    pub compressed_bytes: u64,
}

const MAGIC: &[u8; 4] = b"MLJR";
const VERSION: u32 = 1;
/// magic(4) + version(4) + sequence(8) + prev(8) + flags(4) + count(4)
/// + lines(8) + raw(8) + compressed(8)
const HEADER_BYTES: usize = 56;
const TRAILER_BYTES: usize = 4;
const FLAG_COMMIT_HEAD: u32 = 1;
const NONE: u64 = u64::MAX;

/// Data-page entries that fit in one manifest page.
fn capacity(page_bytes: usize) -> usize {
    assert!(
        page_bytes > HEADER_BYTES + TRAILER_BYTES + 8,
        "page too small for a manifest record"
    );
    (page_bytes - HEADER_BYTES - TRAILER_BYTES) / 8
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestPage {
    sequence: u64,
    prev: Option<u64>,
    commit_head: bool,
    entries: Vec<u64>,
    lines: u64,
    raw_bytes: u64,
    compressed_bytes: u64,
}

impl ManifestPage {
    fn encode(&self, page_bytes: usize) -> Vec<u8> {
        assert!(self.entries.len() <= capacity(page_bytes));
        let mut buf = vec![0u8; HEADER_BYTES + self.entries.len() * 8 + TRAILER_BYTES];
        buf[0..4].copy_from_slice(MAGIC);
        buf[4..8].copy_from_slice(&VERSION.to_le_bytes());
        buf[8..16].copy_from_slice(&self.sequence.to_le_bytes());
        buf[16..24].copy_from_slice(&self.prev.unwrap_or(NONE).to_le_bytes());
        let flags = if self.commit_head {
            FLAG_COMMIT_HEAD
        } else {
            0
        };
        buf[24..28].copy_from_slice(&flags.to_le_bytes());
        buf[28..32].copy_from_slice(&(self.entries.len() as u32).to_le_bytes());
        buf[32..40].copy_from_slice(&self.lines.to_le_bytes());
        buf[40..48].copy_from_slice(&self.raw_bytes.to_le_bytes());
        buf[48..56].copy_from_slice(&self.compressed_bytes.to_le_bytes());
        for (i, &page) in self.entries.iter().enumerate() {
            let off = HEADER_BYTES + i * 8;
            buf[off..off + 8].copy_from_slice(&page.to_le_bytes());
        }
        let body_end = buf.len() - TRAILER_BYTES;
        let checksum = crc32(&buf[..body_end]);
        buf[body_end..].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    fn decode(bytes: &[u8]) -> Result<Self, StorageError> {
        let bad =
            |reason: String| StorageError::InvalidSuperblock(format!("manifest page: {reason}"));
        if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
            return Err(bad("too short".into()));
        }
        if &bytes[0..4] != MAGIC {
            return Err(bad("bad magic".into()));
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4"));
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
        let version = u32_at(4);
        if version != VERSION {
            return Err(bad(format!("unsupported version {version}")));
        }
        let count = u32_at(28) as usize;
        let body_end = HEADER_BYTES + count * 8;
        if bytes.len() < body_end + TRAILER_BYTES {
            return Err(bad(format!("{count} entries overflow the page")));
        }
        let expected = u32_at(body_end);
        let got = crc32(&bytes[..body_end]);
        if got != expected {
            return Err(bad(format!(
                "checksum mismatch: {got:#010x}, recorded {expected:#010x}"
            )));
        }
        let prev = match u64_at(16) {
            NONE => None,
            p => Some(p),
        };
        let entries = (0..count).map(|i| u64_at(HEADER_BYTES + i * 8)).collect();
        Ok(ManifestPage {
            sequence: u64_at(8),
            prev,
            commit_head: u32_at(24) & FLAG_COMMIT_HEAD != 0,
            entries,
            lines: u64_at(32),
            raw_bytes: u64_at(40),
            compressed_bytes: u64_at(48),
        })
    }
}

/// Appends the manifest pages for one commit, chained onto `prev_head`,
/// and returns the new journal head (the commit's head page). Totals live
/// on the head page only; overflow pages carry entries.
///
/// # Errors
///
/// Propagates device errors.
pub fn append_commit<S: PageStore>(
    ssd: &mut SimSsd<S>,
    prev_head: Option<u64>,
    record: &CommitRecord,
) -> Result<u64, StorageError> {
    let cap = capacity(ssd.page_bytes());
    let mut chunks: Vec<&[u64]> = record.data_pages.chunks(cap).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let last = chunks.len() - 1;
    let mut prev = prev_head;
    let mut head = 0u64;
    for (i, chunk) in chunks.into_iter().enumerate() {
        let is_head = i == last;
        let page = ManifestPage {
            sequence: record.sequence,
            prev,
            commit_head: is_head,
            entries: chunk.to_vec(),
            lines: if is_head { record.lines } else { 0 },
            raw_bytes: if is_head { record.raw_bytes } else { 0 },
            compressed_bytes: if is_head { record.compressed_bytes } else { 0 },
        };
        let id = ssd.append(&page.encode(ssd.page_bytes()))?;
        prev = Some(id.0);
        head = id.0;
    }
    Ok(head)
}

/// Walks the manifest chain from `head` and reconstructs every commit,
/// oldest first. The chain lies entirely below the committed frontier, so
/// any decode failure here means real corruption, not a crash artifact.
///
/// # Errors
///
/// Propagates device errors; [`StorageError::InvalidSuperblock`] for a
/// corrupt or inconsistent chain.
pub fn replay<S: PageStore>(
    ssd: &mut SimSsd<S>,
    head: Option<u64>,
) -> Result<Vec<CommitRecord>, StorageError> {
    let mut commits = Vec::new();
    let mut cursor = head;
    // Chunks of the commit currently being collected, newest chunk first.
    let mut pending: Vec<ManifestPage> = Vec::new();
    while let Some(page_id) = cursor {
        let raw = ssd.read_dependent(PageId(page_id))?;
        let page = ManifestPage::decode(&raw)?;
        if page.commit_head && !pending.is_empty() {
            commits.push(finish_commit(std::mem::take(&mut pending))?);
        }
        if !page.commit_head && pending.is_empty() {
            return Err(StorageError::InvalidSuperblock(format!(
                "manifest chain: page {page_id} is an overflow page with no head"
            )));
        }
        cursor = page.prev;
        pending.push(page);
    }
    if !pending.is_empty() {
        commits.push(finish_commit(pending)?);
    }
    commits.reverse();
    Ok(commits)
}

/// Assembles one commit from its chunks (newest first, head chunk leading).
fn finish_commit(chunks: Vec<ManifestPage>) -> Result<CommitRecord, StorageError> {
    let head = &chunks[0];
    debug_assert!(head.commit_head);
    let sequence = head.sequence;
    if chunks.iter().any(|c| c.sequence != sequence) {
        return Err(StorageError::InvalidSuperblock(format!(
            "manifest chain: mixed sequences within commit {sequence}"
        )));
    }
    let mut data_pages = Vec::new();
    for chunk in chunks.iter().rev() {
        data_pages.extend_from_slice(&chunk.entries);
    }
    Ok(CommitRecord {
        sequence,
        data_pages,
        lines: head.lines,
        raw_bytes: head.raw_bytes,
        compressed_bytes: head.compressed_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemStore;
    use crate::perf::DevicePerfModel;

    fn ssd(page_bytes: usize) -> SimSsd<MemStore> {
        SimSsd::new(MemStore::new(page_bytes), DevicePerfModel::default())
    }

    fn record(seq: u64, pages: std::ops::Range<u64>) -> CommitRecord {
        CommitRecord {
            sequence: seq,
            data_pages: pages.collect(),
            lines: seq * 10,
            raw_bytes: seq * 1000,
            compressed_bytes: seq * 100,
        }
    }

    #[test]
    fn single_commit_round_trips() {
        let mut ssd = ssd(512);
        let rec = record(1, 10..20);
        let head = append_commit(&mut ssd, None, &rec).unwrap();
        assert_eq!(replay(&mut ssd, Some(head)).unwrap(), vec![rec]);
        assert_eq!(replay(&mut ssd, None).unwrap(), vec![]);
    }

    #[test]
    fn commits_chain_and_replay_oldest_first() {
        let mut ssd = ssd(512);
        let recs: Vec<CommitRecord> = (1..=5).map(|s| record(s, s * 100..s * 100 + 7)).collect();
        let mut head = None;
        for rec in &recs {
            head = Some(append_commit(&mut ssd, head, rec).unwrap());
        }
        assert_eq!(replay(&mut ssd, head).unwrap(), recs);
    }

    #[test]
    fn large_commits_spill_over_multiple_pages() {
        // 512-byte pages hold (512-60)/8 = 56 entries; 200 entries → 4 pages.
        let mut ssd = ssd(512);
        let rec = record(1, 0..200);
        let head = append_commit(&mut ssd, None, &rec).unwrap();
        assert_eq!(ssd.page_count(), 4);
        let more = record(2, 500..501);
        let head = append_commit(&mut ssd, Some(head), &more).unwrap();
        assert_eq!(
            replay(&mut ssd, Some(head)).unwrap(),
            vec![rec, more],
            "multi-page commit must reassemble in order"
        );
    }

    #[test]
    fn empty_commit_still_journals() {
        let mut ssd = ssd(512);
        let rec = CommitRecord {
            sequence: 3,
            data_pages: vec![],
            lines: 0,
            raw_bytes: 0,
            compressed_bytes: 0,
        };
        let head = append_commit(&mut ssd, None, &rec).unwrap();
        assert_eq!(replay(&mut ssd, Some(head)).unwrap(), vec![rec]);
    }

    #[test]
    fn corrupt_manifest_is_a_hard_error() {
        let mut ssd = ssd(512);
        let head = append_commit(&mut ssd, None, &record(1, 0..5)).unwrap();
        ssd.store_mut()
            .write_page(PageId(head), b"smashed")
            .unwrap();
        assert!(replay(&mut ssd, Some(head)).is_err());
    }

    #[test]
    fn replay_charges_dependent_reads() {
        let mut ssd = ssd(512);
        let mut head = None;
        for s in 1..=3 {
            head = Some(append_commit(&mut ssd, head, &record(s, 0..1)).unwrap());
        }
        ssd.clear_ledger();
        replay(&mut ssd, head).unwrap();
        assert_eq!(
            ssd.ledger().dependent_visits,
            3,
            "chain walk is latency-exposed"
        );
    }
}
