//! Deterministic crash injection: a [`CrashStore`] models a device with a
//! volatile write-back cache and kills the power at any numbered operation.
//!
//! Writes land in a volatile overlay and only reach the durable inner
//! store on [`PageStore::sync`]. A [`CrashPlan`] names the operation
//! (append, write, or sync — all share one counter) at which the power
//! dies:
//!
//! * crashing **at a write/append** loses that write entirely (it never
//!   reached even the cache);
//! * crashing **at a sync** flushes a seeded prefix of the pending writes,
//!   tears the next one at a seeded byte offset, and drops the rest —
//!   exactly the partial-persistence states a real power loss produces.
//!
//! After the crash every operation fails with [`StorageError::Crashed`],
//! and the durable state is frozen at the bytes that survived. Tests
//! extract that state through a [`CrashHandle`] and remount it to verify
//! recovery.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::device::{PageId, PageStore};
use crate::error::StorageError;
use crate::rng::SplitMix64;

/// A deterministic plan of when (and how) the device loses power.
///
/// Operations are numbered from 1 in issue order across appends, writes,
/// and syncs. `crash_at = 0` (the default) never crashes. The seed drives
/// how a sync-point crash shreds the pending write cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrashPlan {
    crash_at: u64,
    seed: u64,
}

impl CrashPlan {
    /// A plan that never crashes (useful for counting a workload's ops).
    pub fn never() -> Self {
        CrashPlan::default()
    }

    /// Crash at operation `op` (1-based). `0` never crashes.
    pub fn crash_at(op: u64) -> Self {
        CrashPlan {
            crash_at: op,
            seed: 0,
        }
    }

    /// Replaces the seed controlling partial-flush shredding.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The operation this plan crashes at (`0` = never).
    pub fn crash_op(&self) -> u64 {
        self.crash_at
    }
}

/// One write buffered in the volatile cache, in issue order.
#[derive(Debug, Clone)]
enum Pending {
    Append(Vec<u8>),
    Write(u64, Vec<u8>),
}

#[derive(Debug)]
struct CrashState {
    ops: u64,
    crashed: Option<u64>,
    /// Read-your-writes view of the volatile cache: page → latest bytes.
    overlay: BTreeMap<u64, Bytes>,
    /// Un-flushed writes in issue order.
    pending: Vec<Pending>,
    /// Appends currently held only in the cache.
    volatile_appends: u64,
}

/// A [`PageStore`] wrapper that injects a power loss per a [`CrashPlan`].
///
/// The durable inner store sits behind an `Arc` so a [`CrashHandle`] can
/// extract post-crash state for remounting.
#[derive(Debug)]
pub struct CrashStore<S> {
    durable: Arc<Mutex<S>>,
    plan: CrashPlan,
    state: Mutex<CrashState>,
}

/// A handle onto the durable half of a [`CrashStore`], for extracting the
/// exact bytes that survived a crash.
#[derive(Debug, Clone)]
pub struct CrashHandle<S> {
    durable: Arc<Mutex<S>>,
}

impl<S: Clone> CrashHandle<S> {
    /// A copy of the durable store as it stands right now — for `MemStore`
    /// and friends, the byte-exact post-power-loss image.
    pub fn snapshot(&self) -> S {
        self.durable.lock().clone()
    }
}

impl<S: PageStore> CrashStore<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: CrashPlan) -> Self {
        CrashStore {
            durable: Arc::new(Mutex::new(inner)),
            plan,
            state: Mutex::new(CrashState {
                ops: 0,
                crashed: None,
                overlay: BTreeMap::new(),
                pending: Vec::new(),
                volatile_appends: 0,
            }),
        }
    }

    /// Wraps `inner` and also returns a [`CrashHandle`] for extracting the
    /// durable state after the crash fires.
    pub fn with_handle(inner: S, plan: CrashPlan) -> (Self, CrashHandle<S>) {
        let store = Self::new(inner, plan);
        let handle = CrashHandle {
            durable: Arc::clone(&store.durable),
        };
        (store, handle)
    }

    /// Operations issued so far (the crash-point counter).
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Whether the planned crash has fired, and at which operation.
    pub fn crashed_at(&self) -> Option<u64> {
        self.state.lock().crashed
    }

    /// Applies one validated write to the durable store.
    fn apply(durable: &mut S, write: Pending) {
        // The volatile layer already validated sizes and ranges, so these
        // cannot fail on the in-memory stores crash drills run against.
        match write {
            Pending::Append(data) => {
                durable.append_page(&data).expect("validated append");
            }
            Pending::Write(page, data) => {
                durable
                    .write_page(PageId(page), &data)
                    .expect("validated write");
            }
        }
    }

    /// Counts an operation against the plan. If this is the crash point:
    /// for a sync, a seeded prefix of the cache is flushed and the next
    /// write torn; for a plain write, nothing reaches the durable store.
    /// Either way the device is dead afterwards.
    fn count_op(
        plan: &CrashPlan,
        st: &mut CrashState,
        durable: &Arc<Mutex<S>>,
        is_sync: bool,
    ) -> Result<(), StorageError> {
        if let Some(op) = st.crashed {
            return Err(StorageError::Crashed { op });
        }
        st.ops += 1;
        if plan.crash_at == 0 || st.ops != plan.crash_at {
            return Ok(());
        }
        let op = st.ops;
        if is_sync {
            let mut rng = SplitMix64::new(plan.seed ^ op);
            let pending = std::mem::take(&mut st.pending);
            if !pending.is_empty() {
                let complete = rng.below(pending.len() as u64 + 1) as usize;
                let mut durable = durable.lock();
                for (i, write) in pending.into_iter().enumerate() {
                    if i < complete {
                        Self::apply(&mut durable, write);
                    } else if i == complete {
                        let tear = |data: Vec<u8>, rng: &mut SplitMix64| {
                            let keep = rng.below(data.len() as u64 + 1) as usize;
                            data[..keep].to_vec()
                        };
                        let torn = match write {
                            Pending::Append(data) => Pending::Append(tear(data, &mut rng)),
                            Pending::Write(page, data) => {
                                Pending::Write(page, tear(data, &mut rng))
                            }
                        };
                        Self::apply(&mut durable, torn);
                    } else {
                        break;
                    }
                }
            }
        }
        st.crashed = Some(op);
        st.overlay.clear();
        st.pending.clear();
        st.volatile_appends = 0;
        Err(StorageError::Crashed { op })
    }
}

impl<S: PageStore> PageStore for CrashStore<S> {
    fn page_bytes(&self) -> usize {
        self.durable.lock().page_bytes()
    }

    fn page_count(&self) -> u64 {
        self.durable.lock().page_count() + self.state.lock().volatile_appends
    }

    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError> {
        let st = self.state.lock();
        if let Some(op) = st.crashed {
            return Err(StorageError::Crashed { op });
        }
        if let Some(page) = st.overlay.get(&id.0) {
            return Ok(page.clone());
        }
        drop(st);
        self.durable.lock().read_page(id)
    }

    fn append_page(&mut self, data: &[u8]) -> Result<PageId, StorageError> {
        let page_bytes = self.durable.lock().page_bytes();
        if data.len() > page_bytes {
            return Err(StorageError::Oversized {
                got: data.len(),
                page_bytes,
            });
        }
        let durable_pages = self.durable.lock().page_count();
        let st = self.state.get_mut();
        Self::count_op(&self.plan, st, &self.durable, false)?;
        let id = durable_pages + st.volatile_appends;
        let mut padded = vec![0u8; page_bytes];
        padded[..data.len()].copy_from_slice(data);
        st.overlay.insert(id, Bytes::from(padded));
        st.pending.push(Pending::Append(data.to_vec()));
        st.volatile_appends += 1;
        Ok(PageId(id))
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        let page_bytes = self.durable.lock().page_bytes();
        let extent = self.durable.lock().page_count() + self.state.lock().volatile_appends;
        if id.0 >= extent {
            return Err(StorageError::OutOfRange { page: id.0, extent });
        }
        if data.len() > page_bytes {
            return Err(StorageError::Oversized {
                got: data.len(),
                page_bytes,
            });
        }
        let st = self.state.get_mut();
        Self::count_op(&self.plan, st, &self.durable, false)?;
        let mut padded = vec![0u8; page_bytes];
        padded[..data.len()].copy_from_slice(data);
        st.overlay.insert(id.0, Bytes::from(padded));
        st.pending.push(Pending::Write(id.0, data.to_vec()));
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        let st = self.state.get_mut();
        Self::count_op(&self.plan, st, &self.durable, true)?;
        let pending = std::mem::take(&mut st.pending);
        let mut durable = self.durable.lock();
        for write in pending {
            Self::apply(&mut durable, write);
        }
        durable.sync()?;
        drop(durable);
        st.overlay.clear();
        st.volatile_appends = 0;
        Ok(())
    }

    fn truncate(&mut self, pages: u64) -> Result<(), StorageError> {
        let st = self.state.get_mut();
        if let Some(op) = st.crashed {
            return Err(StorageError::Crashed { op });
        }
        // Recovery only truncates right after a remount, when the cache is
        // empty; handle a non-empty cache anyway by dropping volatile state
        // at or beyond the new extent.
        st.overlay.retain(|&p, _| p < pages);
        let durable_pages = self.durable.lock().page_count();
        if pages <= durable_pages {
            st.pending
                .retain(|w| matches!(w, Pending::Write(p, _) if *p < pages));
            st.volatile_appends = 0;
            self.durable.lock().truncate(pages)?;
        } else {
            let keep_appends = pages - durable_pages;
            let mut seen = 0u64;
            st.pending.retain(|w| match w {
                Pending::Append(_) => {
                    seen += 1;
                    seen <= keep_appends
                }
                Pending::Write(p, _) => *p < pages,
            });
            st.volatile_appends = st.volatile_appends.min(keep_appends);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemStore;

    fn store(plan: CrashPlan) -> (CrashStore<MemStore>, CrashHandle<MemStore>) {
        CrashStore::with_handle(MemStore::new(64), plan)
    }

    #[test]
    fn no_crash_is_a_write_back_cache() {
        let (mut s, handle) = store(CrashPlan::never());
        let id = s.append_page(b"cached").unwrap();
        assert_eq!(&s.read_page(id).unwrap()[..6], b"cached");
        assert_eq!(
            handle.snapshot().page_count(),
            0,
            "un-synced writes stay volatile"
        );
        s.sync().unwrap();
        let durable = handle.snapshot();
        assert_eq!(durable.page_count(), 1);
        assert_eq!(&durable.read_page(id).unwrap()[..6], b"cached");
        assert_eq!(s.ops(), 2);
        assert_eq!(s.crashed_at(), None);
    }

    #[test]
    fn crash_at_a_write_loses_it_and_kills_the_device() {
        let (mut s, handle) = store(CrashPlan::crash_at(3));
        s.append_page(b"one").unwrap();
        s.sync().unwrap();
        assert!(matches!(
            s.append_page(b"two"),
            Err(StorageError::Crashed { op: 3 })
        ));
        // Dead means dead: every subsequent op fails the same way.
        assert!(matches!(
            s.read_page(PageId(0)),
            Err(StorageError::Crashed { op: 3 })
        ));
        assert!(matches!(s.sync(), Err(StorageError::Crashed { op: 3 })));
        assert!(matches!(
            s.truncate(0),
            Err(StorageError::Crashed { op: 3 })
        ));
        // Only the synced write survived.
        let durable = handle.snapshot();
        assert_eq!(durable.page_count(), 1);
        assert_eq!(&durable.read_page(PageId(0)).unwrap()[..3], b"one");
    }

    #[test]
    fn crash_at_a_sync_persists_a_seeded_partial_prefix() {
        // Deterministic: the same seed shreds the cache identically.
        let run = |seed: u64| {
            let (mut s, handle) = store(CrashPlan::crash_at(4).with_seed(seed));
            s.append_page(&[1u8; 64]).unwrap();
            s.append_page(&[2u8; 64]).unwrap();
            s.append_page(&[3u8; 64]).unwrap();
            assert!(matches!(s.sync(), Err(StorageError::Crashed { op: 4 })));
            let d = handle.snapshot();
            (0..d.page_count())
                .map(|p| d.read_page(PageId(p)).unwrap().to_vec())
                .collect::<Vec<_>>()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed, same surviving bytes");
        assert!(
            a.len() <= 3,
            "at most the issued appends can land: {}",
            a.len()
        );
        // Different seeds explore different shred points; across a few
        // seeds at least one must differ from seed 11's outcome.
        let mut saw_different = false;
        for seed in 12..30 {
            if run(seed) != a {
                saw_different = true;
                break;
            }
        }
        assert!(saw_different, "shredding must actually vary by seed");
    }

    #[test]
    fn reads_see_the_volatile_overlay() {
        let (mut s, _h) = store(CrashPlan::never());
        let id = s.append_page(b"v1").unwrap();
        s.sync().unwrap();
        s.write_page(id, b"v2").unwrap();
        assert_eq!(
            &s.read_page(id).unwrap()[..2],
            b"v2",
            "read-your-writes through the cache"
        );
        assert_eq!(
            &_h.snapshot().read_page(id).unwrap()[..2],
            b"v1",
            "durable copy unchanged until sync"
        );
    }

    #[test]
    fn validation_errors_do_not_consume_crash_ops() {
        let (mut s, _h) = store(CrashPlan::crash_at(1));
        assert!(matches!(
            s.append_page(&[0u8; 100]),
            Err(StorageError::Oversized { .. })
        ));
        assert!(matches!(
            s.write_page(PageId(5), b"x"),
            Err(StorageError::OutOfRange { .. })
        ));
        assert_eq!(s.ops(), 0, "rejected ops never reach the device");
        assert!(matches!(
            s.append_page(b"boom"),
            Err(StorageError::Crashed { op: 1 })
        ));
    }

    #[test]
    fn truncate_drops_the_volatile_tail() {
        let (mut s, _h) = store(CrashPlan::never());
        s.append_page(b"a").unwrap();
        s.sync().unwrap();
        s.append_page(b"b").unwrap();
        s.append_page(b"c").unwrap();
        assert_eq!(s.page_count(), 3);
        s.truncate(1).unwrap();
        assert_eq!(s.page_count(), 1);
        let id = s.append_page(b"d").unwrap();
        assert_eq!(id, PageId(1), "extent shrank for real");
    }
}
