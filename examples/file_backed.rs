//! Larger-than-RAM operation: the same MithriLog system backed by a
//! file-based page store instead of the in-memory device — including the
//! durability round trip: unmount, then recover-on-mount via
//! [`MithriLog::open`].
//!
//! ```sh
//! cargo run --release --example file_backed
//! ```

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("mithrilog-file-backed-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("device.pages");
    // `create` refuses to clobber a formatted store, so clear any leftover
    // from a previous run before formatting a fresh one.
    let _ = std::fs::remove_file(&path);

    let dataset = generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 1_000_000,
        seed: 55,
    });
    {
        let mut system = MithriLog::create(&path, SystemConfig::default())?;
        let report = system.ingest(dataset.text())?;
        println!(
            "ingested {} lines into {} on-disk pages at {} ({:.2}x compression)",
            report.lines,
            report.data_pages,
            path.display(),
            report.compression_ratio()
        );
    } // store dropped: the "process" ends here

    // Remount: the superblock is validated, the journal replayed, and the
    // index restored from its committed checkpoint — no reindexing pass.
    let (mut system, recovery) = MithriLog::open(&path, SystemConfig::default())?;
    println!("remounted: {recovery}");

    let outcome = system.query_str("FATAL AND ciod:")?;
    println!(
        "query 'FATAL AND ciod:': {} matches from {} pages read off disk",
        outcome.match_count(),
        outcome.pages_scanned
    );
    for line in outcome.lines.iter().take(3) {
        println!("  {line}");
    }

    let disk_bytes = std::fs::metadata(&path)?.len();
    println!(
        "device file size: {} bytes ({} total pages incl. index)",
        disk_bytes,
        disk_bytes / 4096
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
