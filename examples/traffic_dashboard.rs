//! Higher-order analytics on filter output (paper §1/§8): tag every line
//! with its template in one accelerator pass, break traffic down by
//! template, histogram an event class over time, and flag rate spikes.
//!
//! ```sh
//! cargo run --release --example traffic_dashboard
//! ```

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_analytics::{
    extract_epoch, EventMatrix, PcaModel, RateSpikeDetector, TemplateCounts, TimeHistogram,
    TopTokens,
};
use mithrilog_filter::FilterPipeline;
use mithrilog_ftree::{FtreeConfig, TemplateLibrary};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut text = generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: 1_500_000,
        seed: 21,
    })
    .into_text();

    // Inject an ssh brute-force burst: many failures in one minute.
    let burst_epoch = 1_102_100_000u64;
    for i in 0..400 {
        text.extend_from_slice(
            format!(
                "- {} 2004.12.03 liberty007 Dec 3 11:{:02}:{:02} liberty007/liberty007 \
                 sshd[31337]: Failed password for root from 10.6.6.{} port 4711 ssh2\n",
                burst_epoch + i / 10,
                (i / 60) % 60,
                i % 60,
                i % 250 + 1,
            )
            .as_bytes(),
        );
    }

    // 1. Template breakdown via one tagged pass over the corpus.
    let library = TemplateLibrary::extract(
        &text,
        &FtreeConfig {
            min_support: 8,
            max_children: 24,
            max_depth: 12,
            min_leaf_fraction: 0.0002,
        },
    );
    let top_ids: Vec<usize> = (0..library.len().min(6)).collect();
    let joined = library.joined_query(&top_ids);
    let pipeline = FilterPipeline::compile(&joined)?;
    let counts = TemplateCounts::scan(&pipeline, &text);
    println!(
        "traffic by template (top {} templates, one tagged pass):",
        top_ids.len()
    );
    for (set, n) in counts.ranking() {
        let t = &library.templates()[top_ids[set]];
        println!(
            "  template #{:<3} {:>7} lines  key tokens {:?}",
            t.id(),
            n,
            &t.tokens()[..t.tokens().len().min(4)]
        );
    }
    println!("  unmatched: {} of {}", counts.unmatched(), counts.total());

    // 2. Extract the failure class with the accelerated system, histogram
    //    it over time, and detect the burst.
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(&text)?;
    let failures = system.query_str("Failed AND password")?;
    println!(
        "\n'Failed AND password': {} events extracted ({} pages scanned)",
        failures.match_count(),
        failures.pages_scanned
    );

    let mut histogram = TimeHistogram::new(60);
    histogram.record_lines(failures.lines.iter().map(String::as_str));
    let spikes = RateSpikeDetector::new(2.5).detect(&histogram);
    println!(
        "time histogram: {} one-minute buckets, mean rate {:.1} events/bucket",
        histogram.bucket_count(),
        histogram.mean_rate()
    );
    for s in &spikes {
        println!(
            "  SPIKE at epoch {}: {} events (z={:.1})",
            s.bucket_start, s.count, s.z_score
        );
    }
    assert!(
        spikes
            .iter()
            .any(|s| s.bucket_start / 60 == burst_epoch / 60
                || (s.bucket_start >= burst_epoch && s.bucket_start < burst_epoch + 120)),
        "the injected burst should be detected"
    );

    // 3. What characterizes the spike? Top tokens of the spiking minute.
    let mut top = TopTokens::new();
    for line in failures.lines.iter().filter(|l| {
        mithrilog_analytics::extract_epoch(l)
            .is_some_and(|e| e >= burst_epoch && e < burst_epoch + 120)
    }) {
        top.record_line(line);
    }
    println!("top tokens inside the spike window:");
    for (tok, n) in top.top(6) {
        println!("  {tok:<24} x{n}");
    }

    // 4. PCA anomaly detection over the tagged event-count matrix: the
    //    burst window's template mix breaks the normal correlation
    //    structure, so its residual stands out (the Xu-et-al. analysis the
    //    paper's introduction motivates).
    let k = counts.ranking().len();
    let mut matrix = EventMatrix::new(60, k + 1);
    for (line, tag) in pipeline.tag_text(&text) {
        if let Some(epoch) = std::str::from_utf8(line).ok().and_then(extract_epoch) {
            matrix.record(epoch, tag.unwrap_or(k));
        }
    }
    let model = PcaModel::fit(&matrix, 1);
    let mut residuals: Vec<(u64, f64)> = (0..matrix.windows())
        .map(|w| (matrix.window_start(w), model.residual(matrix.row(w))))
        .collect();
    residuals.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\nPCA residuals over {} one-minute windows (top 3):",
        matrix.windows()
    );
    for (start, r) in residuals.iter().take(3) {
        println!("  window @{start}: residual {r:.1}");
    }
    Ok(())
}
