//! Iterative anomaly exploration (the paper's motivating §1 use case):
//! start broad, narrow with negative terms, then time-slice with index
//! snapshots — the "log discovery and iterative exploration" workload.
//!
//! ```sh
//! cargo run --release --example anomaly_hunt
//! ```

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = generate(&DatasetSpec {
        profile: DatasetProfile::Spirit2,
        target_bytes: 2_000_000,
        seed: 99,
    });
    let mut system = MithriLog::new(SystemConfig::default());

    // Ingest in two batches with explicit snapshots, simulating two days.
    let text = dataset.text();
    let half = {
        // Split at a line boundary near the middle.
        let mid = text.len() / 2;
        mid + text[mid..].iter().position(|&b| b == b'\n').unwrap_or(0) + 1
    };
    system.ingest(&text[..half])?;
    system.snapshot_at(1_104_600_000)?; // end of "day 1"
    system.ingest(&text[half..])?;
    system.snapshot_at(1_104_700_000)?; // end of "day 2"
    println!(
        "ingested {} lines over two batches; {} snapshots",
        system.lines(),
        system.index().snapshots().len()
    );

    // Round 1: broad sweep — anything that failed.
    let round1 = system.query_str("Failed")?;
    println!(
        "\nround 1 'Failed': {} hits across {} pages scanned",
        round1.match_count(),
        round1.pages_scanned
    );

    // Round 2: narrow — failed passwords, but not the well-known scanner
    // account, and only for illegal users.
    let round2 = system.query_str("Failed AND password AND illegal")?;
    println!(
        "round 2 'Failed AND password AND illegal': {} hits",
        round2.match_count()
    );
    for line in round2.lines.iter().take(3) {
        println!("  {line}");
    }

    // Round 3: negative-heavy exploration — what is this node logging that
    // is NOT routine? (index cannot prune; MithriLog full-scans at
    // accelerator speed, the workload class of Figure 16's slow cluster)
    let round3 = system
        .query_str("NOT session AND NOT synchronized AND NOT sshd AND NOT terminated AND NOT OK")?;
    println!(
        "round 3 negative sweep: {} hits (used index: {}, modeled time {:?})",
        round3.match_count(),
        round3.used_index,
        round3.modeled_time
    );

    // Round 4: time-slice via snapshots — rerun round 2 on "day 2" only.
    let (lo, hi) = system.index().time_slice(1_104_600_000, 1_104_700_000);
    println!(
        "\nday-2 page window from snapshots: {:?} .. {:?} of {} data pages",
        lo,
        hi,
        system.data_page_count()
    );
    let q = mithrilog_query::parse("Failed AND password AND illegal")?;
    let day2 = system.query_time_range(&q, 1_104_600_000, 1_104_700_000)?;
    println!(
        "round 2 restricted to day 2: {} hits across {} pages (vs {} unrestricted)",
        day2.match_count(),
        day2.pages_scanned,
        round2.match_count()
    );
    assert!(day2.match_count() <= round2.match_count());
    Ok(())
}
