//! Template-based log search (paper §4.3): extract an FT-tree template
//! library from a corpus, translate templates into offloadable queries, and
//! run several templates *concurrently* in one accelerator pass.
//!
//! ```sh
//! cargo run --release --example template_search
//! ```

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_ftree::{FtreeConfig, TemplateLibrary};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Liberty-profile synthetic corpus.
    let dataset = generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: 2_000_000,
        seed: 7,
    });
    println!(
        "generated {}: {} lines, {} bytes",
        dataset.name(),
        dataset.lines(),
        dataset.text().len()
    );

    // Step 1: machine-extract the template library (frequency tree).
    let library = TemplateLibrary::extract(
        dataset.text(),
        &FtreeConfig {
            min_support: 8,
            max_children: 24,
            max_depth: 12,
            min_leaf_fraction: 0.0002,
        },
    );
    println!("extracted {} templates; top five:", library.len());
    for t in library.iter().take(5) {
        println!(
            "  #{:<3} support {:<6} tokens {:?} negatives {:?}",
            t.id(),
            t.support(),
            t.tokens(),
            t.negatives()
        );
    }

    // Step 2: ingest and query single templates.
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(dataset.text())?;
    let template = &library.templates()[0];
    let outcome = system.query(&template.to_query())?;
    println!(
        "\ntemplate #0 matches {} of {} lines (support at extraction: {})",
        outcome.match_count(),
        system.lines(),
        template.support()
    );

    // Step 3: multiple templates in ONE offloaded query — the hardware
    // evaluates all intersection sets concurrently at no performance loss.
    let joined = library.joined_query(&[0, 1, 2, 3]);
    let outcome = system.query(&joined)?;
    println!(
        "templates 0-3 joined with OR: {} matching lines, offloaded: {}, {} intersection sets",
        outcome.match_count(),
        outcome.offloaded,
        joined.sets().len()
    );

    // Step 4: classification — tag lines with template ids in software.
    let sample = String::from_utf8_lossy(dataset.text());
    let mut tagged = 0;
    for line in sample.lines().take(1000) {
        if library.classify(line).is_some() {
            tagged += 1;
        }
    }
    println!("classified {tagged}/1000 sample lines into templates");
    Ok(())
}
