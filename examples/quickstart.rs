//! Quickstart: ingest a small log and run token queries end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mithrilog::{MithriLog, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A MithriLog system with the paper's prototype configuration: LZAH
    // page compression, a 256-row cuckoo filter, the in-storage inverted
    // index, and the BlueDBM device performance model.
    let mut system = MithriLog::new(SystemConfig::default());

    let log = "\
- 1117838570 2005.06.03 R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected\n\
- 1117838571 2005.06.03 R02-M1-N0-C:J12-U11 RAS KERNEL FATAL data storage interrupt\n\
- 1117838572 2005.06.03 R16-M1-N2-I:J17-U01 RAS APP FATAL ciod: Error loading program\n\
- 1117838573 2005.06.03 R16-M1-N2-I:J17-U01 RAS KERNEL INFO generating core.2275\n\
- 1117838574 2005.06.03 R02-M1-N0-C:J12-U11 RAS KERNEL FATAL machine check interrupt\n";

    let report = system.ingest(log.as_bytes())?;
    println!(
        "ingested {} lines in {} data pages ({:.2}x compression)",
        report.lines,
        report.data_pages,
        report.compression_ratio()
    );

    // Queries use the accelerator's union-of-intersections language:
    // AND / OR / NOT over whole tokens.
    for query in [
        "FATAL",
        "KERNEL AND FATAL AND NOT machine",
        "ciod: OR core.2275",
    ] {
        let outcome = system.query_str(query)?;
        println!(
            "\nquery {query:?} -> {} lines (offloaded: {}, modeled device time: {:?})",
            outcome.match_count(),
            outcome.offloaded,
            outcome.modeled_time
        );
        for line in &outcome.lines {
            println!("  {line}");
        }
    }

    // The modeled accelerator throughput for this corpus:
    let t = system.modeled_throughput();
    println!(
        "\nmodeled filter-engine throughput: {:.2} GB/s (bound by {})",
        t.total_gbps, t.bound_by
    );
    Ok(())
}
