//! Tour of the compression layer (paper §5): LZAH versus the baseline
//! codecs, page-aligned framing, and the hardware-facing *aligned* decode
//! mode that hands the tokenizer line-aligned words.
//!
//! ```sh
//! cargo run --release --example compression_tour
//! ```

use mithrilog_compress::{
    compress_paged, decompress_page, Codec, Gzf, Lz4, Lzah, LzahConfig, Lzrw1, Snappy,
};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = generate(&DatasetSpec {
        profile: DatasetProfile::Thunderbird,
        target_bytes: 1_000_000,
        seed: 3,
    });
    let text = dataset.text();

    // 1. Ratio comparison (the Table 5 experiment in miniature).
    println!("codec ratios on 1 MB of {}:", dataset.name());
    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(Lzah::default()),
        Box::new(Lzrw1::new()),
        Box::new(Lz4::new()),
        Box::new(Snappy::new()),
        Box::new(Gzf::new()),
    ];
    for codec in &codecs {
        let packed = codec.compress(text);
        let restored = codec.decompress(&packed)?;
        assert_eq!(restored, text, "lossless round trip");
        println!(
            "  {:<6} {:>8} -> {:>8} bytes  ({:.2}x)",
            codec.name(),
            text.len(),
            packed.len(),
            text.len() as f64 / packed.len() as f64
        );
    }

    // 2. Page-aligned framing: every 4 KB storage page decompresses
    //    independently, so the index can hand the accelerator any subset.
    let paged = compress_paged(text, LzahConfig::default(), 4096);
    println!(
        "\npaged: {} pages, {:.2}x ratio with per-page framing (vs {:.2}x unpaged)",
        paged.page_count(),
        paged.ratio(),
        Lzah::default().ratio(text)
    );
    let some_page = &paged.pages()[paged.page_count() / 2];
    let page_text = decompress_page(some_page)?;
    println!(
        "  middle page alone: {} compressed -> {} raw bytes, {} lines",
        some_page.data().len(),
        page_text.len(),
        some_page.lines()
    );

    // 3. Aligned decode: the decompressor can emit zero-padded, line-aligned
    //    words "to make the tokenizer's work easier" (Figure 10).
    let lzah = Lzah::default();
    let packed = lzah.compress(b"short\nlonger line here\n");
    let aligned = lzah.decompress_aligned(&packed)?;
    println!(
        "\naligned decode of two lines: {} bytes ({} words of 16), zero padding after newlines",
        aligned.len(),
        aligned.len() / 16
    );
    Ok(())
}
