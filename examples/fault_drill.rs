//! Fault-injection drill: silent corruption, flaky reads, and graceful
//! query degradation on the simulated device.
//!
//! The backing store is wrapped in a [`FaultyStore`] driven by a seeded
//! fault plan, so every run injects exactly the same faults. The drill
//! shows the three recovery layers working together:
//!
//! 1. a full-device **scrub** finds exactly the pages the plan corrupted,
//!    via the per-page CRC32 sidecar;
//! 2. **queries degrade instead of failing**: corrupt data pages are
//!    skipped and reported, with an estimate of the lines lost;
//! 3. **transient read errors are retried** by the device, with each
//!    re-read charged to the cost ledger as a full flash access.
//!
//! ```sh
//! cargo run --release --example fault_drill
//! ```

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_storage::{FaultKind, FaultPlan, FaultyStore, Link, MemStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::default();

    // Schedule faults on specific pages, then sprinkle probabilistic bit
    // rot on top. Same seed, same faults, every run.
    let plan = FaultPlan::seeded(2021)
        .with_scheduled(3, FaultKind::BitRot { bit: 12_345 })
        .with_scheduled(5, FaultKind::TornWrite { valid_bytes: 100 })
        .with_scheduled(8, FaultKind::TransientRead { failures: 2 })
        .with_bit_rot_rate(0.01);
    let store = FaultyStore::new(MemStore::new(config.device.page_bytes), plan);
    let mut system = MithriLog::with_store(store, config)?;

    let dataset = generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 2_000_000,
        seed: 7,
    });
    let report = system.ingest(dataset.text())?;
    println!(
        "ingested {} lines into {} data pages ({:.2}x compression)",
        report.lines,
        report.data_pages,
        report.compression_ratio()
    );

    // Layers 2 and 3: a query over the damaged corpus completes, skipping
    // corrupt pages and retrying the transient page instead of erroring.
    let outcome = system.query_str("FATAL OR error")?;
    println!(
        "\nquery 'FATAL OR error': {} matches from {} pages scanned",
        outcome.match_count(),
        outcome.pages_scanned
    );
    println!("degradation: {}", outcome.degraded);
    assert!(
        outcome.match_count() > 0,
        "degraded queries still return the surviving matches"
    );
    let model = *system.device().model();
    println!(
        "query ledger: {} pages read, {} transient retries \
         (each costs {:?} of modeled re-read latency); modeled read time {:?}",
        outcome.ledger.pages_read,
        outcome.ledger.retries,
        model.read_latency,
        outcome.ledger.modeled_read_time(&model, Link::Internal)
    );

    // Layer 1: the scrub walks every page and verifies its checksum,
    // finding exactly what the plan planted.
    let scrub = system.scrub();
    println!("\n{scrub}");
    let planted = system.device().store().corrupted_pages();
    let found: Vec<u64> = scrub.corrupt.iter().map(|c| c.page).collect();
    println!("fault plan corrupted pages {planted:?}");
    println!("scrub found pages          {found:?}");
    assert_eq!(
        found, planted,
        "the scrub must find exactly the planted faults"
    );
    Ok(())
}
