//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides a [`Mutex`] with `parking_lot`'s poison-free `lock()` signature,
//! implemented over `std::sync::Mutex`. Only the surface this workspace uses
//! is covered.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error: a
/// poisoned lock (a panic while held) simply yields the inner data, matching
/// `parking_lot` semantics.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
