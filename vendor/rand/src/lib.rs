//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This workspace builds without network access, so external dependencies
//! are replaced by minimal local implementations. The generator here is
//! SplitMix64 — deterministic, fast, and statistically solid for the
//! synthetic-log generation and test workloads this workspace runs. Only the
//! API surface the workspace uses is implemented: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool, gen}`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Re-exported RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; identical seeds produce
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One warm-up step decorrelates small seeds.
        let mut rng = StdRng {
            state: seed ^ 0x5DEE_CE66_D123_4567,
        };
        rng.next_u64();
        rng
    }
}

/// A range samplable by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Value types drawable uniformly by [`Rng::gen`], mirroring
/// `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn draw(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> f64 {
        rng.next_f64()
    }
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;

    /// Draws one uniformly-distributed value.
    fn gen<T: Standard>(&mut self) -> T;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0,1]");
        self.next_f64() < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| a.gen_range(0u64..1 << 60) != c.gen_range(0u64..1 << 60));
        assert!(differs, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(3usize..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
