//! Offline stand-in for the `bytes` crate.
//!
//! This workspace builds in environments with no network access and no
//! crates.io mirror, so the handful of external dependencies are replaced by
//! minimal local implementations covering exactly the API surface the
//! workspace uses. [`Bytes`] here is a cheaply-cloneable, immutable byte
//! buffer backed by an `Arc<[u8]>`, API-compatible with the subset of
//! `bytes::Bytes` the storage layer relies on.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Creates a buffer copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slicing_and_iteration_work() {
        let b = Bytes::from(b"hello page".to_vec());
        assert_eq!(&b[..5], b"hello");
        assert!(b[5..6].iter().all(|&x| x == b' '));
    }
}
