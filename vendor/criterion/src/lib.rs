//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds without network access, so the benchmark harness is
//! replaced by a minimal local implementation of the API subset the `bench`
//! crate uses: `criterion_group!` / `criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `throughput` / `bench_function` /
//! `bench_with_input` / `finish`, [`BenchmarkId::from_parameter`], and
//! [`Bencher::iter`].
//!
//! Instead of criterion's statistical analysis, each benchmark closure is
//! timed over a small fixed number of samples and the mean wall time (plus
//! throughput, when declared) is printed. That keeps `cargo bench` useful for
//! coarse comparisons while staying dependency-free.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Samples per benchmark when the group does not override `sample_size`.
const DEFAULT_SAMPLES: usize = 10;

/// Declared throughput of one benchmark iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, keeping its return value alive so
    /// the work is not optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call absorbs first-touch effects.
        let _ = routine();
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a named benchmark closure.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        self.run(&label, |b| f(b));
        self
    }

    /// Runs a benchmark closure with a borrowed input value.
    pub fn bench_with_input<F, I>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
        I: ?Sized,
    {
        let label = format!("{}/{}", self.name, id.label);
        self.run(&label, |b| f(b, input));
        self
    }

    /// Ends the group (report lines are printed as benchmarks run).
    pub fn finish(&mut self) {}

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        assert!(bencher.iters > 0, "benchmark closure never called iter()");
        let mean = bencher.elapsed / bencher.iters as u32;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if mean > Duration::ZERO => {
                let gbps = bytes as f64 / mean.as_secs_f64() / 1e9;
                format!("  ({gbps:.3} GB/s)")
            }
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                let meps = n as f64 / mean.as_secs_f64() / 1e6;
                format!("  ({meps:.3} Melem/s)")
            }
            _ => String::new(),
        };
        println!("bench {label:<50} {mean:>12.2?}/iter{rate}");
        self.criterion.completed += 1;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    completed: usize,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a standalone named benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("default", |b| f(b));
        group.finish();
        self
    }
}

/// Pass-through hint mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_all_benchmarks() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(2);
            g.throughput(Throughput::Bytes(1024));
            g.bench_function("sum", |b| {
                b.iter(|| (0..1000u64).sum::<u64>());
            });
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
                b.iter(|| n * 2);
            });
            g.finish();
        }
        assert_eq!(c.completed, 2);
    }
}
