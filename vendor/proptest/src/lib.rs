//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds without network access, so the property-testing
//! dependency is replaced by a minimal local implementation of the API
//! subset the workspace uses: the [`Strategy`] trait with `prop_map` /
//! `prop_recursive`, regex-character-class string strategies
//! (`"[a-z]{1,12}"`), integer-range and tuple strategies, `Just`,
//! [`collection::vec`] / [`collection::hash_set`], `any::<T>()`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated values via
//!   the normal assertion message;
//! * **deterministic seeding** — each `proptest!` test derives its RNG seed
//!   from the test function name, so failures reproduce exactly;
//! * regex strategies support only character classes with an optional
//!   `{m,n}` repetition (the only form log-analytics tests here use).

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform usize in `[start, end)`.
    pub fn in_range(&mut self, r: &Range<usize>) -> usize {
        assert!(r.start < r.end, "empty size range");
        r.start + self.below(r.end - r.start)
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The value type generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply-cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Builds a recursive strategy: `self` is the leaf; `f` receives the
    /// strategy for the next-shallower level and returns the composite.
    /// `depth` levels are unrolled, so generated values have bounded depth.
    /// The `_desired_size` / `_expected_branch` hints of real proptest are
    /// accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            level = f(level.clone()).boxed();
        }
        level
    }
}

/// Type-erased, cheaply-cloneable strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy mapping another strategy's values (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len());
        self.arms[pick].generate(rng)
    }
}

// ---------- primitive strategies ----------

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating arbitrary values of `T` (see [`any`]).
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------- tuple strategies ----------

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

// ---------- regex-character-class string strategies ----------

/// Parsed form of a `[class]{m,n}` pattern.
#[derive(Debug, Clone)]
struct ClassPattern {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class_pattern(pat: &str) -> ClassPattern {
    let bytes: Vec<char> = pat.chars().collect();
    assert!(
        bytes.first() == Some(&'['),
        "unsupported pattern {pat:?}: only [class]{{m,n}} is implemented"
    );
    let close = bytes
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| panic!("unterminated class in {pat:?}"));
    let class = &bytes[1..close];
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "inverted range in {pat:?}");
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty class in {pat:?}");
    let rest: String = bytes[close + 1..].iter().collect();
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in {pat:?}"));
        match inner.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("repetition min"),
                n.trim().parse().expect("repetition max"),
            ),
            None => {
                let n: usize = inner.trim().parse().expect("repetition count");
                (n, n)
            }
        }
    };
    assert!(min <= max, "inverted repetition in {pat:?}");
    ClassPattern { chars, min, max }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let p = parse_class_pattern(self);
        let len = p.min + rng.below(p.max - p.min + 1);
        (0..len)
            .map(|_| p.chars[rng.below(p.chars.len())])
            .collect()
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let p = parse_class_pattern(self);
        let len = p.min + rng.below(p.max - p.min + 1);
        (0..len)
            .map(|_| p.chars[rng.below(p.chars.len())])
            .collect()
    }
}

// ---------- collection strategies ----------

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values sized in `[size.start, size.end)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.in_range(&self.size);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates hash sets of `element` values sized in
    /// `[size.start, size.end)`. Duplicates are redrawn, so the element
    /// domain must be comfortably larger than the requested size.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.in_range(&self.size);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n {
                out.insert(self.element.generate(rng));
                attempts += 1;
                assert!(
                    attempts < 100 * (n + 1),
                    "hash_set strategy could not reach size {n}: element domain too small"
                );
            }
            out
        }
    }
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Namespace mirroring the `prop::` path of the real crate's prelude.
pub mod prop {
    pub use crate::collection;
}

// ---------- macros ----------

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property assertion: plain `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each function runs `cases` times with fresh
/// generated inputs. The RNG seed derives from the test name, so runs are
/// reproducible.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $(#[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($(#[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(#[test] fn $name ( $($arg in $strat),+ ) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn class_patterns_parse_and_generate() {
        let mut rng = TestRng::from_name("class");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let p = Strategy::generate(&"[ -~]{0,200}", &mut rng);
            assert!(p.len() <= 200);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
            let one = Strategy::generate(&"[a-e]", &mut rng);
            assert_eq!(one.len(), 1);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::from_name("sizes");
        for _ in 0..100 {
            let v = Strategy::generate(&collection::vec(any::<u8>(), 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            let h = Strategy::generate(&collection::hash_set("[a-z]{1,10}", 2..20), &mut rng);
            assert!((2..20).contains(&h.len()));
        }
    }

    #[test]
    fn oneof_and_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(u8),
            Pair(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| T::Pair(Box::new(a), Box::new(b))),
                    inner,
                ]
            });
        let mut rng = TestRng::from_name("rec");
        let mut saw_pair = false;
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 4);
            saw_pair |= matches!(t, T::Pair(..));
        }
        assert!(saw_pair, "recursion never fired");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(x in 0u8..32, s in "[0-9]{1,8}") {
            prop_assert!(x < 32);
            prop_assert_eq!(s.len(), s.chars().filter(char::is_ascii_digit).count(), "s={}", s);
        }
    }
}
