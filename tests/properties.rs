//! Property-based tests (proptest) on the core data structures and
//! invariants: codec losslessness, query-language round trips, DNF
//! equivalence, hardware-filter/reference agreement, and index
//! no-false-negative guarantees.

use proptest::prelude::*;

use mithrilog_compress::{Codec, Gzf, Lz4, Lzah, Lzrw1, Snappy};
use mithrilog_filter::{CompiledQuery, FilterParams, HashFilter};
use mithrilog_index::{IndexParams, InvertedIndex};
use mithrilog_query::ast::Expr;
use mithrilog_query::{parse, IntersectionSet, Query, Term};
use mithrilog_storage::{DevicePerfModel, MemStore, PageId, SimSsd};

// ---------- codecs ----------

fn arbitrary_loglike() -> impl Strategy<Value = Vec<u8>> {
    // Lines of printable words, some repetition via a small vocabulary.
    let word = prop_oneof![
        Just("kernel:".to_string()),
        Just("error".to_string()),
        Just("node-17".to_string()),
        "[a-z]{1,12}",
        "[0-9]{1,8}",
    ];
    prop::collection::vec(prop::collection::vec(word, 1..10), 0..60).prop_map(|lines| {
        let mut out = Vec::new();
        for words in lines {
            out.extend_from_slice(words.join(" ").as_bytes());
            out.push(b'\n');
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lzah_roundtrips_loglike(data in arbitrary_loglike()) {
        let c = Lzah::default();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn lzah_roundtrips_arbitrary_nul_free(data in prop::collection::vec(1u8..=255, 0..4000)) {
        // LZAH's exact mode is specified for NUL-free text (logs).
        let c = Lzah::default();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn lzrw1_roundtrips_arbitrary(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = Lzrw1::new();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn lz4_roundtrips_arbitrary(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = Lz4::new();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn gzf_roundtrips_arbitrary(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = Gzf::new();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn snappy_roundtrips_arbitrary(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = Snappy::new();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn paged_lzah_reassembles(data in arbitrary_loglike()) {
        let paged = mithrilog_compress::compress_paged(
            &data,
            mithrilog_compress::LzahConfig::default(),
            512,
        );
        let mut rebuilt = Vec::new();
        for p in paged.pages() {
            prop_assert!(p.data().len() <= 512);
            rebuilt.extend_from_slice(&mithrilog_compress::decompress_page(p).unwrap());
        }
        prop_assert_eq!(rebuilt, data);
    }
}

// ---------- mutilated pages ----------
//
// LZAH frames carry no payload checksum (page integrity lives in the
// storage layer's CRC sidecar), so the decoder's contract on damaged
// input is: return promptly with a typed `DecompressError` or a bounded
// `Ok` — never panic, never loop, never allocate unbounded output from a
// lying header. A 4 KB page can legitimately expand (matches reference a
// word table), so the over-allocation bound is generous but finite.

const MUTILATED_OUTPUT_BOUND: usize = 4 << 20;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lzah_survives_bit_flips(
        data in arbitrary_loglike(),
        flips in prop::collection::vec((any::<u64>(), 0u32..8), 1..16)
    ) {
        let c = Lzah::default();
        let mut packed = c.compress(&data);
        for (at, bit) in &flips {
            let i = (*at as usize) % packed.len();
            packed[i] ^= 1 << bit;
        }
        match c.decompress(&packed) {
            Err(_) => {}
            Ok(out) => prop_assert!(out.len() <= MUTILATED_OUTPUT_BOUND),
        }
    }

    #[test]
    fn lzah_survives_header_field_damage(
        data in arbitrary_loglike(),
        at in 0u64..24,
        byte in any::<u8>()
    ) {
        // The first 24 bytes are magic/version/word/hash/flags plus the
        // declared lengths — exactly where a lying header could request a
        // runaway allocation or a never-ending pair loop.
        let c = Lzah::default();
        let mut packed = c.compress(&data);
        let i = (at as usize).min(packed.len() - 1);
        packed[i] = byte;
        match c.decompress(&packed) {
            Err(_) => {}
            Ok(out) => prop_assert!(out.len() <= MUTILATED_OUTPUT_BOUND),
        }
    }

    #[test]
    fn lzah_survives_spliced_garbage(
        data in arbitrary_loglike(),
        at in any::<u64>(),
        garbage in prop::collection::vec(any::<u8>(), 1..64)
    ) {
        let c = Lzah::default();
        let mut packed = c.compress(&data);
        let i = (at as usize) % packed.len();
        let end = (i + garbage.len()).min(packed.len());
        packed[i..end].copy_from_slice(&garbage[..end - i]);
        match c.decompress(&packed) {
            Err(_) => {}
            Ok(out) => prop_assert!(out.len() <= MUTILATED_OUTPUT_BOUND),
        }
    }

    #[test]
    fn lzah_ignores_page_padding_and_trailing_garbage(
        data in arbitrary_loglike(),
        tail in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        // A frame stored in a page is followed by padding the decoder must
        // never read past: whatever follows the frame, the payload decodes
        // to exactly the original bytes.
        let c = Lzah::default();
        let mut packed = c.compress(&data);
        packed.extend_from_slice(&tail);
        prop_assert_eq!(c.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzah_truncations_never_return_wrong_bytes(
        data in arbitrary_loglike(),
        cut in any::<u64>()
    ) {
        let c = Lzah::default();
        let packed = c.compress(&data);
        let cut = (cut as usize) % (packed.len() + 1);
        if let Ok(out) = c.decompress(&packed[..cut]) {
            prop_assert_eq!(out, data, "Ok on a truncated frame must be exact");
        }
    }
}

// ---------- query language ----------

fn arbitrary_expr() -> impl Strategy<Value = Expr> {
    let leaf = "[a-e]".prop_map(Expr::token);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            inner.prop_map(Expr::not),
        ]
    })
}

fn eval_expr(e: &Expr, present: &std::collections::HashSet<&str>) -> bool {
    match e {
        Expr::Token(t) => present.contains(t.as_str()),
        Expr::Not(x) => !eval_expr(x, present),
        Expr::And(xs) => xs.iter().all(|x| eval_expr(x, present)),
        Expr::Or(xs) => xs.iter().any(|x| eval_expr(x, present)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dnf_conversion_preserves_semantics(e in arbitrary_expr(), present_mask in 0u8..32) {
        let q = e.to_query().unwrap();
        let vocab = ["a", "b", "c", "d", "e"];
        let present: std::collections::HashSet<&str> = vocab
            .iter()
            .enumerate()
            .filter(|(i, _)| present_mask & (1 << i) != 0)
            .map(|(_, t)| *t)
            .collect();
        prop_assert_eq!(q.matches_token_set(&present), eval_expr(&e, &present));
    }

    #[test]
    fn display_parse_roundtrip(e in arbitrary_expr()) {
        let q = e.to_query().unwrap();
        let reparsed = parse(&q.to_string()).unwrap();
        prop_assert_eq!(q, reparsed);
    }

    #[test]
    fn hardware_filter_agrees_with_reference(
        e in arbitrary_expr(),
        lines in prop::collection::vec(
            prop::collection::vec("[a-e]", 0..6), 1..20)
    ) {
        let q = e.to_query().unwrap();
        if let Ok(cq) = CompiledQuery::compile(&q, FilterParams::default()) {
            for toks in &lines {
                let mut f = HashFilter::new(&cq);
                let verdict = f.evaluate_line(toks.iter().map(|s| s.as_bytes())).keep;
                let set: std::collections::HashSet<&str> =
                    toks.iter().map(String::as_str).collect();
                prop_assert_eq!(verdict, q.matches_token_set(&set), "line {:?}", toks);
            }
        }
    }
}

// ---------- cuckoo filter ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_query_never_false_negatives_on_its_own_terms(
        tokens in prop::collection::hash_set("[a-z]{1,20}", 1..40)
    ) {
        let tokens: Vec<String> = tokens.into_iter().collect();
        let q = Query::all_of(tokens.clone());
        let cq = CompiledQuery::compile(&q, FilterParams::default()).unwrap();
        // A line containing exactly the query tokens must match.
        let mut f = HashFilter::new(&cq);
        let verdict = f.evaluate_line(tokens.iter().map(|s| s.as_bytes()));
        prop_assert!(verdict.keep);
    }

    #[test]
    fn negated_superset_line_never_matches(
        tokens in prop::collection::hash_set("[a-z]{1,10}", 2..20)
    ) {
        let mut it = tokens.iter();
        let neg = it.next().unwrap().clone();
        let pos: Vec<String> = it.cloned().collect();
        let mut set = IntersectionSet::of_tokens(pos);
        set.push(Term::negative(neg.clone()));
        let q = Query::try_new(vec![set]).unwrap();
        let cq = CompiledQuery::compile(&q, FilterParams::default()).unwrap();
        let mut f = HashFilter::new(&cq);
        // Line contains every token including the negated one.
        let verdict = f.evaluate_line(tokens.iter().map(|s| s.as_bytes()));
        prop_assert!(!verdict.keep);
    }
}

// ---------- inverted index ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn index_lookup_is_superset_of_truth(
        pages in prop::collection::vec(
            prop::collection::hash_set("[a-h]{1,3}", 1..6), 1..60)
    ) {
        let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::default());
        let mut idx = InvertedIndex::new(IndexParams::small());
        for (p, tokens) in pages.iter().enumerate() {
            let toks: Vec<&[u8]> = tokens.iter().map(|t| t.as_bytes()).collect();
            idx.insert_page_tokens(&mut ssd, PageId(p as u64), toks).unwrap();
        }
        // Every (token, page) pair must be discoverable: no false negatives.
        for (p, tokens) in pages.iter().enumerate() {
            for t in tokens {
                let got = idx.lookup(&mut ssd, t.as_bytes()).unwrap();
                prop_assert!(
                    got.contains(&PageId(p as u64)),
                    "token {t:?} lost page {p}"
                );
            }
        }
    }
}

// ---------- tokenizer/word stream ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tokenizer_words_reassemble_tokens(line in "[ -~]{0,200}") {
        use mithrilog_tokenizer::{Tokenizer, TokenizerConfig};
        let tok = Tokenizer::new(TokenizerConfig::default());
        let words = tok.tokenize_line(line.as_bytes());
        // Reassemble tokens from the word stream.
        let mut rebuilt: Vec<Vec<u8>> = Vec::new();
        let mut cur: Vec<u8> = Vec::new();
        for w in &words {
            cur.extend_from_slice(w.token_bytes());
            if w.is_last_of_token() {
                rebuilt.push(std::mem::take(&mut cur));
            }
        }
        let expected: Vec<Vec<u8>> = line
            .split_ascii_whitespace()
            .map(|t| t.as_bytes().to_vec())
            .collect();
        prop_assert_eq!(rebuilt, expected);
        // Flags: exactly one last_of_line on the final word, none elsewhere.
        if let Some((last, rest)) = words.split_last() {
            prop_assert!(last.is_last_of_line());
            prop_assert!(rest.iter().all(|w| !w.is_last_of_line()));
        }
    }
}
