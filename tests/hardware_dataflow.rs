//! Fidelity test of the real hardware dataflow (paper Figure 3): the
//! accelerator never materializes exact text — the decompressor emits
//! *line-aligned words* (zero padding after each newline, Figure 10), the
//! tokenizer treats the pad bytes as delimiters, and the filter consumes
//! the token stream. This test wires that exact path and checks it is
//! verdict-equivalent to the software path over exact text.

use mithrilog_compress::{Codec, Lzah};
use mithrilog_filter::{FilterPipeline, HashFilter};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_query::parse;
use mithrilog_tokenizer::{Tokenizer, TokenizerConfig};

/// Tokenizer configured like the hardware behind an aligned decompressor:
/// NUL pad bytes act as delimiters alongside whitespace.
fn aligned_tokenizer() -> Tokenizer {
    let mut cfg = TokenizerConfig::default();
    cfg.delimiters.push(0u8);
    Tokenizer::new(cfg)
}

#[test]
fn aligned_stream_filtering_matches_exact_text_filtering() {
    let corpus = generate(&DatasetSpec {
        profile: DatasetProfile::Spirit2,
        target_bytes: 120_000,
        seed: 31,
    })
    .into_text();

    let codec = Lzah::default();
    let packed = codec.compress(&corpus);
    let exact = codec.decompress(&packed).unwrap();
    assert_eq!(exact, corpus);
    let aligned = codec.decompress_aligned(&packed).unwrap();
    assert!(aligned.len() >= exact.len(), "padding only adds bytes");
    assert_eq!(aligned.len() % 16, 0, "aligned stream is word-granular");

    let queries = [
        "kernel: AND hda:",
        "session AND opened AND NOT closed",
        "Failed OR sshd",
        "NOT kernel:",
    ];
    let tok = aligned_tokenizer();
    for qs in queries {
        let q = parse(qs).unwrap();
        let pipeline = FilterPipeline::compile(&q).unwrap();

        // Software path: exact text, standard tokenizer.
        let exact_kept = pipeline.filter_text(&exact).count();

        // Hardware path: aligned stream, NUL-aware tokenizer feeding the
        // hash filter word by word.
        let compiled = pipeline.compiled();
        let mut filter = HashFilter::new(compiled);
        let mut aligned_kept = 0usize;
        for line in aligned.split(|b| *b == b'\n') {
            // Strip leading pad bytes carried over from the previous word.
            if line.iter().all(|&b| b == 0) {
                continue;
            }
            let mut verdict = None;
            let words = tok.tokenize_line(line);
            if words.is_empty() {
                continue;
            }
            for w in &words {
                if let Some(v) = filter.accept_word(w) {
                    verdict = Some(v);
                }
            }
            if verdict.expect("line verdict").keep {
                aligned_kept += 1;
            }
        }
        assert_eq!(aligned_kept, exact_kept, "query {qs:?}");
    }
}

#[test]
fn aligned_stream_tokens_equal_exact_tokens() {
    let corpus = b"R24-M0 RAS APP FATAL ciod: error\nshort\na-token-longer-than-sixteen-bytes x\n";
    let codec = Lzah::default();
    let packed = codec.compress(corpus);
    let aligned = codec.decompress_aligned(&packed).unwrap();

    let standard = Tokenizer::new(TokenizerConfig::default());
    let nul_aware = aligned_tokenizer();
    let exact_tokens: Vec<Vec<u8>> = standard
        .tokens(corpus)
        .filter(|t| *t != b"\n")
        .map(<[u8]>::to_vec)
        .collect();
    let aligned_tokens: Vec<Vec<u8>> = nul_aware.tokens(&aligned).map(<[u8]>::to_vec).collect();
    assert_eq!(aligned_tokens, exact_tokens);
}
