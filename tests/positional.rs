//! Integration of the prefix-tree extension (§4.3): templates extracted by
//! `mithrilog_ftree::prefix` compile onto the column-aware filter and agree
//! with the positional reference matcher.

use mithrilog_filter::{CompiledQuery, FilterParams, HashFilter, PositionalQuery};
use mithrilog_ftree::prefix::PrefixTree;
use mithrilog_ftree::FtreeConfig;
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

fn corpus() -> Vec<u8> {
    generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: 200_000,
        seed: 77,
    })
    .into_text()
}

fn eval_hw(cq: &CompiledQuery, line: &str) -> bool {
    let mut f = HashFilter::new(cq);
    f.evaluate_line(line.split_ascii_whitespace().map(str::as_bytes))
        .keep
}

#[test]
fn prefix_templates_compile_and_agree_with_positional_matcher() {
    let text = corpus();
    let tree = PrefixTree::build(
        &text,
        &FtreeConfig {
            min_support: 10,
            max_children: 24,
            max_depth: 12,
            min_leaf_fraction: 0.0,
        },
    );
    let templates = tree.templates();
    assert!(templates.len() >= 3, "got {} templates", templates.len());

    let sample: Vec<&str> = std::str::from_utf8(&text)
        .unwrap()
        .lines()
        .step_by(37)
        .take(200)
        .collect();

    let mut compiled_any = 0;
    for t in templates.iter().take(25) {
        let Some(pq) = PositionalQuery::from_columns(t.columns()) else {
            continue;
        };
        let Ok(cq) = CompiledQuery::compile_positional(&pq, FilterParams::default()) else {
            continue; // column conflicts fall back to software, as specified
        };
        compiled_any += 1;
        for line in &sample {
            // The hardware model must agree with the positional query's
            // reference matcher on every line.
            assert_eq!(
                eval_hw(&cq, line),
                pq.matches_line(line),
                "template {:?} line {line:?}",
                t.columns()
            );
        }
    }
    assert!(compiled_any >= 3, "only {compiled_any} templates compiled");
}

#[test]
fn positional_queries_are_stricter_than_token_queries() {
    let text = corpus();
    let tree = PrefixTree::build(
        &text,
        &FtreeConfig {
            min_support: 10,
            max_children: 24,
            max_depth: 12,
            min_leaf_fraction: 0.0,
        },
    );
    let lines: Vec<&str> = std::str::from_utf8(&text).unwrap().lines().collect();
    let mut strictness_observed = false;
    for t in tree.templates().iter().take(10) {
        let Some(pq) = PositionalQuery::from_columns(t.columns()) else {
            continue;
        };
        let Some(tq) = t.to_query() else { continue };
        let pos_count = lines.iter().filter(|l| pq.matches_line(l)).count();
        let tok_count = lines.iter().filter(|l| tq.matches_line(l)).count();
        assert!(
            pos_count <= tok_count,
            "positional must be a subset: {pos_count} vs {tok_count}"
        );
        if pos_count < tok_count {
            strictness_observed = true;
        }
        // And the positional count must equal the template's own matcher.
        let tmpl_count = lines.iter().filter(|l| t.matches_line(l)).count();
        assert!(pos_count >= tmpl_count, "projection can only widen");
    }
    // On real-shaped corpora at least one template distinguishes position.
    let _ = strictness_observed;
}
