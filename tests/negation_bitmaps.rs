//! Per-segment token bitmaps: negated-term pruning must never change a
//! query's result — only how many pages the planner reads to produce it.
//!
//! The contract (DESIGN.md, "Wave planner"): a sealed page may be skipped
//! only on *proof* — a positive term whose hash bucket is unset (the term
//! cannot be on the page) or a negated term byte-equal to a token present
//! on every line of the page (every line is disqualified). The observable
//! consequence, tested here against a `bitmap_buckets: 0` replica that
//! replays the seed full-scan planner: byte-identical lines on clean
//! devices, under all four fault modes (bit rot, torn writes, transient
//! reads, crashes), and strictly fewer pages scanned whenever a negated
//! term saturates the corpus. Corrupt sidecars must degrade the plan back
//! to conservative scanning — counted, never lied about.

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_storage::{
    CrashPlan, CrashStore, FaultKind, FaultPlan, FaultyStore, MemStore, PageStore,
};
use proptest::prelude::*;

/// Segments seal every 16 pages so a modest corpus freezes several bitmap
/// sidecars (the default 256 would leave everything in the open segment).
const SEGMENT_PAGES: u64 = 16;

fn bitmap_config() -> SystemConfig {
    SystemConfig {
        segment_pages: SEGMENT_PAGES,
        ..SystemConfig::for_tests()
    }
}

/// The seed planner: identical except the bitmaps are never built, so
/// negative-only queries full-scan.
fn seed_config() -> SystemConfig {
    SystemConfig {
        bitmap_buckets: 0,
        ..bitmap_config()
    }
}

fn corpus(target_bytes: usize) -> Vec<u8> {
    generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes,
        seed: 7,
    })
    .into_text()
}

/// Queries mixing saturating negations (`RAS` is on every BGL line),
/// non-saturating negations, and positive controls.
const QUERIES: [&str; 6] = [
    "NOT RAS",
    "FATAL AND NOT RAS",
    "NOT FATAL",
    "KERNEL AND NOT FATAL",
    "FATAL",
    "RAS OR KERNEL",
];

#[test]
fn negated_queries_prune_pages_and_stay_byte_identical() {
    let text = corpus(250_000);
    let mut seed = MithriLog::new(seed_config());
    seed.ingest(&text).unwrap();
    let mut bitmapped = MithriLog::new(bitmap_config());
    bitmapped.ingest(&text).unwrap();
    assert!(
        !bitmapped.bitmap_sidecar_locations().is_empty(),
        "corpus must seal at least one segment with a persisted sidecar"
    );

    for q in QUERIES {
        let want = seed.query_str(q).unwrap();
        let got = bitmapped.query_str(q).unwrap();
        assert_eq!(got.lines, want.lines, "query {q:?} diverged from seed");
        assert!(
            got.pages_scanned <= want.pages_scanned,
            "query {q:?}: pruning may never add pages"
        );
    }

    // The saturating negation is the headline: the seed full-scans, the
    // bitmaps reduce the scan to the open (unsealed) tail.
    let full = seed.query_str("NOT RAS").unwrap();
    let pruned = bitmapped.query_str("NOT RAS").unwrap();
    assert!(
        pruned.pages_scanned < full.pages_scanned,
        "saturating negation must prune: {} vs {}",
        pruned.pages_scanned,
        full.pages_scanned
    );
}

/// Data pages of a clean probe ingest. Data pages are appended before each
/// commit's metadata, so their ids are identical whether or not sidecar
/// blobs ride the commit — the same schedule hits the same data both ways.
fn probe_data_pages(text: &[u8]) -> Vec<u64> {
    let mut probe = MithriLog::new(bitmap_config());
    probe.ingest(text).unwrap();
    probe.data_pages().iter().map(|p| p.0).collect()
}

fn faulted_system(
    config: SystemConfig,
    text: &[u8],
    schedule: &[(u64, FaultKind)],
) -> MithriLog<FaultyStore<MemStore>> {
    let mut plan = FaultPlan::seeded(99);
    for &(page, kind) in schedule {
        plan = plan.with_scheduled(page, kind);
    }
    let store = FaultyStore::new(MemStore::new(config.device.page_bytes), plan);
    let mut system = MithriLog::with_store(store, config).unwrap();
    system.ingest(text).unwrap();
    system
}

/// Bit rot, torn writes, and transient reads on data pages: the pruned
/// planner must return exactly the lines the full-scan planner returns.
/// (A corrupt page the bitmaps prove non-matching may legally go unvisited
/// — the full scan skips it with zero surviving lines either way.)
#[test]
fn bitmap_pruning_matches_full_scan_under_data_faults() {
    let text = corpus(250_000);
    let data_pages = probe_data_pages(&text);
    assert!(data_pages.len() >= 10);
    let schedule = vec![
        (data_pages[1], FaultKind::BitRot { bit: 5 }),
        (data_pages[3], FaultKind::TransientRead { failures: 2 }),
        (data_pages[6], FaultKind::TransientRead { failures: 50 }),
        (data_pages[9], FaultKind::TornWrite { valid_bytes: 100 }),
    ];

    let mut degraded_seen = false;
    for q in QUERIES {
        let want = faulted_system(seed_config(), &text, &schedule)
            .query_str(q)
            .unwrap();
        let got = faulted_system(bitmap_config(), &text, &schedule)
            .query_str(q)
            .unwrap();
        assert_eq!(
            got.lines, want.lines,
            "query {q:?} diverged from the faulted full scan"
        );
        assert!(
            got.pages_scanned <= want.pages_scanned,
            "query {q:?}: pruning may never add pages under faults"
        );
        degraded_seen |= !want.degraded.skipped_pages.is_empty() || want.degraded.retries > 0;
    }
    assert!(degraded_seen, "the fault schedule must actually bite");
}

/// Crash mode: power dies mid-workload; the surviving bytes are mounted
/// twice — once with bitmaps enabled (sidecars loaded, pruning active),
/// once with `bitmap_buckets: 0` (directory discarded, full scans). Both
/// mounts see the same recovered prefix and must agree byte for byte.
#[test]
fn crash_recovered_mount_prunes_identically_to_full_scan_mount() {
    let text = corpus(250_000);
    let batches: Vec<&[u8]> = split_lines(&text, 6);

    // Size the op space with the power held up.
    let (store, handle) = CrashStore::with_handle(
        MemStore::new(bitmap_config().device.page_bytes),
        CrashPlan::never(),
    );
    let mut baseline = MithriLog::with_store(store, bitmap_config()).unwrap();
    for b in &batches {
        baseline.ingest(b).unwrap();
    }
    let total_ops = baseline.device().store().ops();
    drop(baseline);
    let _ = handle;

    let mut pruning_mount_seen = false;
    for frac in [2, 3, 6, 7] {
        let crash_op = total_ops * frac / 8;
        let (store, handle) = CrashStore::with_handle(
            MemStore::new(bitmap_config().device.page_bytes),
            CrashPlan::crash_at(crash_op).with_seed(0xC0FFEE),
        );
        let mut system = MithriLog::with_store(store, bitmap_config())
            .map(Some)
            .unwrap_or(None);
        if let Some(sys) = system.as_mut() {
            for b in &batches {
                if sys.ingest(b).is_err() {
                    break;
                }
            }
        }
        drop(system);
        let durable = handle.snapshot();

        let Ok((mut pruned, _)) = MithriLog::open_store(durable.clone(), bitmap_config()) else {
            continue; // crash before the first commit: nothing to mount
        };
        let (mut full, _) = MithriLog::open_store(durable, seed_config()).unwrap();
        assert_eq!(pruned.lines(), full.lines(), "mounts see the same prefix");
        for q in QUERIES {
            let want = full.query_str(q).unwrap();
            let got = pruned.query_str(q).unwrap();
            assert_eq!(
                got.lines, want.lines,
                "crash@{crash_op} query {q:?}: pruned mount diverged"
            );
        }
        if !pruned.bitmap_sidecar_locations().is_empty() {
            pruning_mount_seen = true;
            let want = full.query_str("NOT RAS").unwrap();
            let got = pruned.query_str("NOT RAS").unwrap();
            assert!(
                got.pages_scanned < want.pages_scanned,
                "crash@{crash_op}: recovered sidecars must still prune"
            );
        }
    }
    assert!(
        pruning_mount_seen,
        "at least one crash point must recover a sealed segment's sidecar"
    );
}

fn split_lines(text: &[u8], parts: usize) -> Vec<&[u8]> {
    let target = text.len().div_ceil(parts);
    let mut out = Vec::new();
    let mut start = 0;
    while start < text.len() {
        let mut end = (start + target).min(text.len());
        while end < text.len() && text[end] != b'\n' {
            end += 1;
        }
        if end < text.len() {
            end += 1;
        }
        out.push(&text[start..end]);
        start = end;
    }
    out
}

/// A sidecar corrupted *on disk* fails its CRC at mount: the segment's
/// bitmaps are dropped (counted in the recovery report), the plan goes
/// conservative, and every result stays correct.
#[test]
fn corrupt_sidecar_at_mount_degrades_not_lies() {
    let text = corpus(250_000);
    let (store, handle) = CrashStore::with_handle(
        MemStore::new(bitmap_config().device.page_bytes),
        CrashPlan::never(),
    );
    let mut system = MithriLog::with_store(store, bitmap_config()).unwrap();
    system.ingest(&text).unwrap();
    let sidecars = system.bitmap_sidecar_locations();
    assert!(!sidecars.is_empty(), "need a persisted sidecar to corrupt");
    let pruned_before = system.query_str("NOT RAS").unwrap().pages_scanned;
    drop(system);

    let mut durable = handle.snapshot();
    let (_, first_page, page_count) = sidecars[0];
    let page_bytes = bitmap_config().device.page_bytes;
    for p in first_page..first_page + page_count {
        durable
            .write_page(mithrilog_storage::PageId(p), &vec![0xA5u8; page_bytes])
            .unwrap();
    }

    let (mut recovered, report) = MithriLog::open_store(durable, bitmap_config()).unwrap();
    assert!(
        report.segment_bitmaps_dropped >= 1,
        "the mount must count the corrupt sidecar: {report}"
    );
    // The dropped segment now scans conservatively: more pages than the
    // fully-bitmapped system, but never a wrong line.
    let mut clean = MithriLog::new(bitmap_config());
    clean.ingest(&text).unwrap();
    for q in QUERIES {
        let want = clean.query_str(q).unwrap();
        let got = recovered.query_str(q).unwrap();
        assert_eq!(got.lines, want.lines, "query {q:?} lied after the drop");
    }
    let after = recovered.query_str("NOT RAS").unwrap().pages_scanned;
    assert!(
        after > pruned_before,
        "the dropped segment must plan conservatively ({after} vs {pruned_before})"
    );
}

/// The same corruption found *online*: `scrub()` re-validates every
/// sidecar, drops the broken one, and reports it in
/// [`ScrubReport::bitmaps_dropped`](mithrilog_storage::ScrubReport).
#[test]
fn corrupt_sidecar_at_scrub_degrades_not_lies() {
    let text = corpus(250_000);
    let mut system = MithriLog::new(bitmap_config());
    system.ingest(&text).unwrap();
    let sidecars = system.bitmap_sidecar_locations();
    assert!(!sidecars.is_empty(), "need a persisted sidecar to corrupt");
    let pruned_before = system.query_str("NOT RAS").unwrap().pages_scanned;

    let (_, first_page, page_count) = sidecars[0];
    let page_bytes = system.device().page_bytes();
    for p in first_page..first_page + page_count {
        system
            .device_mut()
            .store_mut()
            .write_page(mithrilog_storage::PageId(p), &vec![0xA5u8; page_bytes])
            .unwrap();
    }

    let report = system.scrub();
    assert!(
        report.bitmaps_dropped >= 1,
        "scrub must count the corrupt sidecar: {report:?}"
    );
    // A second scrub finds nothing new: the ref is gone, not re-counted.
    assert_eq!(system.scrub().bitmaps_dropped, 0);

    let mut clean = MithriLog::new(bitmap_config());
    clean.ingest(&text).unwrap();
    for q in QUERIES {
        let want = clean.query_str(q).unwrap();
        let got = system.query_str(q).unwrap();
        assert_eq!(got.lines, want.lines, "query {q:?} lied after the drop");
    }
    let after = system.query_str("NOT RAS").unwrap().pages_scanned;
    assert!(
        after > pruned_before,
        "the dropped segment must plan conservatively ({after} vs {pruned_before})"
    );
}

// ---------------------------------------------------------------------------
// Property: pruning never skips a page holding a matching line. Random
// corpora over a tiny token alphabet (so 8 hash buckets collide hard),
// with optional hot tokens stamped on every line (saturating) and empty
// lines mixed in; random conjunctions with random negations. The
// bitmapped replica must return exactly the full-scan replica's lines.
// ---------------------------------------------------------------------------

const ALPHABET: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "hot"];

fn line_strategy() -> impl Strategy<Value = Vec<usize>> {
    // Token indices for one line; empty = blank line.
    proptest::collection::vec(0..ALPHABET.len(), 0..5)
}

fn query_strategy() -> impl Strategy<Value = Vec<(usize, bool)>> {
    proptest::collection::vec((0..ALPHABET.len(), any::<bool>()), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pruning_never_skips_a_matching_page(
        lines in proptest::collection::vec(line_strategy(), 20..200),
        saturate_hot in any::<bool>(),
        queries in proptest::collection::vec(query_strategy(), 1..4),
    ) {
        let mut text = String::new();
        for tokens in &lines {
            if saturate_hot {
                text.push_str("hot ");
            }
            for &t in tokens {
                text.push_str(ALPHABET[t]);
                text.push(' ');
            }
            text.push('\n');
        }
        // Tiny segments and few buckets: seals fast, collides hard.
        let bm_config = SystemConfig {
            segment_pages: 4,
            bitmap_buckets: 8,
            ..SystemConfig::for_tests()
        };
        let fs_config = SystemConfig { bitmap_buckets: 0, ..bm_config.clone() };
        let mut bitmapped = MithriLog::new(bm_config);
        bitmapped.ingest(text.as_bytes()).unwrap();
        let mut full = MithriLog::new(fs_config);
        full.ingest(text.as_bytes()).unwrap();

        for q in &queries {
            let text_q: Vec<String> = q
                .iter()
                .map(|&(t, neg)| {
                    if neg { format!("NOT {}", ALPHABET[t]) } else { ALPHABET[t].to_string() }
                })
                .collect();
            let text_q = text_q.join(" AND ");
            let want = full.query_str(&text_q).unwrap();
            let got = bitmapped.query_str(&text_q).unwrap();
            prop_assert_eq!(
                &got.lines,
                &want.lines,
                "query {:?} diverged under pruning",
                text_q
            );
            prop_assert!(
                got.pages_scanned <= want.pages_scanned,
                "query {:?}: pruning added pages",
                text_q
            );
        }
    }
}
