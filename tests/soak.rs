//! Cross-profile soak: for every dataset profile, run a real FT-tree query
//! bank through the full system and assert exact agreement with both
//! baselines on every query. This is the repo's strongest end-to-end
//! consistency check (the same property the benchmark harness asserts at
//! larger scale).

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_baseline::{IndexedEngine, LogTable};
use mithrilog_ftree::{FtreeConfig, TemplateLibrary};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_query::batch::{combine, BatchSpec};
use mithrilog_query::Query;

#[test]
fn all_profiles_all_query_classes_agree() {
    for profile in DatasetProfile::all() {
        let text = generate(&DatasetSpec {
            profile,
            target_bytes: 250_000,
            seed: 2026,
        })
        .into_text();

        let library = TemplateLibrary::extract(
            &text,
            &FtreeConfig {
                min_support: 8,
                max_children: 24,
                max_depth: 12,
                min_leaf_fraction: 0.0002,
            },
        );
        let singles = library.queries();
        assert!(
            singles.len() >= 8,
            "{profile:?}: {} templates",
            singles.len()
        );
        let pairs = combine(
            &singles,
            BatchSpec {
                arity: 2,
                count: 20,
            },
            7,
        );
        let eights = combine(&singles, BatchSpec { arity: 8, count: 4 }, 9);

        let table = LogTable::from_text(&text);
        let indexed = IndexedEngine::build(&table);
        let mut system = MithriLog::new(SystemConfig::default());
        system.ingest(&text).unwrap();

        let queries: Vec<Query> = singles
            .iter()
            .take(30)
            .chain(pairs.iter())
            .chain(eights.iter())
            .cloned()
            .collect();
        for q in &queries {
            let mithrilog = system.query(q).unwrap().match_count();
            let splunk_like = indexed.count_matches(&table, q);
            let reference = std::str::from_utf8(&text)
                .unwrap()
                .lines()
                .filter(|l| q.matches_line(l))
                .count() as u64;
            assert_eq!(mithrilog, reference, "{profile:?} system vs reference: {q}");
            assert_eq!(
                splunk_like, reference,
                "{profile:?} indexed vs reference: {q}"
            );
        }
    }
}
