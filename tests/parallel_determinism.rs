//! Determinism of the parallel query datapath under fault injection.
//!
//! The invariant (DESIGN.md, "Parallel multi-pipeline datapath"): for any
//! worker count, a query returns a **byte-identical** outcome — the same
//! matched lines in the same order, the same degraded-read report (skipped
//! pages in plan order, retry counts), the same cost-ledger totals, the
//! same modeled time. Only `wall_time` may differ.
//!
//! These tests exercise the invariant the hard way: a seeded [`FaultPlan`]
//! plants bit rot, recoverable and unrecoverable transient-read episodes,
//! and a torn write on known *data* pages, so every scan path — clean
//! read, retry-then-succeed, retry-then-skip, checksum-mismatch skip — is
//! hit concurrently by striped workers. Ingest is deterministic, so a
//! fresh system per thread count sees the identical device layout.

use mithrilog::{MithriLog, QueryOutcome, SystemConfig};
use mithrilog_loggen::{generate, Dataset, DatasetProfile, DatasetSpec};
use mithrilog_storage::{FaultKind, FaultPlan, FaultyStore, MemStore};

fn corpus(target_bytes: usize) -> Dataset {
    generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes,
        seed: 7,
    })
}

/// Builds a faulted system with `threads` workers over `text`. The fault
/// schedule targets real data pages, discovered by probing a clean system
/// with the same (deterministic) ingest.
fn faulted_system(
    text: &[u8],
    threads: usize,
    schedule: &[(u64, FaultKind)],
) -> MithriLog<FaultyStore<MemStore>> {
    let config = SystemConfig {
        query_threads: threads,
        ..SystemConfig::default()
    };
    let mut plan = FaultPlan::seeded(99);
    for &(page, kind) in schedule {
        plan = plan.with_scheduled(page, kind);
    }
    let store = FaultyStore::new(MemStore::new(config.device.page_bytes), plan);
    let mut system = MithriLog::with_store(store, config).unwrap();
    system.ingest(text).unwrap();
    system
}

/// The fault schedule: one of each failure mode, on distinct data pages.
/// `data_pages` comes from a clean probe of the same corpus.
fn schedule(data_pages: &[u64]) -> Vec<(u64, FaultKind)> {
    assert!(
        data_pages.len() >= 9,
        "corpus must span enough pages for the drill, got {}",
        data_pages.len()
    );
    vec![
        // Silent corruption: caught by the page checksum, page skipped.
        (data_pages[1], FaultKind::BitRot { bit: 5 }),
        // Recoverable transient episode: 2 failures < 3 attempts, so the
        // page is read successfully after charging 2 retries.
        (data_pages[3], FaultKind::TransientRead { failures: 2 }),
        // Unrecoverable episode: outlasts the retry budget, page skipped.
        (data_pages[5], FaultKind::TransientRead { failures: 50 }),
        // Torn write: tail zeroed, checksum mismatch, page skipped.
        (data_pages[8], FaultKind::TornWrite { valid_bytes: 100 }),
    ]
}

/// Everything except wall-clock must be identical.
fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, context: &str) {
    assert_eq!(a.lines, b.lines, "{context}: matched lines");
    assert_eq!(a.offloaded, b.offloaded, "{context}: offload path");
    assert_eq!(a.used_index, b.used_index, "{context}: plan kind");
    assert_eq!(a.pages_scanned, b.pages_scanned, "{context}: plan size");
    assert_eq!(a.bytes_filtered, b.bytes_filtered, "{context}: bytes");
    assert_eq!(a.lines_scanned, b.lines_scanned, "{context}: lines scanned");
    assert_eq!(a.ledger, b.ledger, "{context}: cost ledger");
    assert_eq!(a.modeled_time, b.modeled_time, "{context}: modeled time");
    assert_eq!(a.degraded, b.degraded, "{context}: degraded report");
}

const QUERIES: [&str; 5] = [
    // Selective token through the index.
    "FATAL",
    // Conjunction with negation on the offloaded path.
    "KERNEL AND NOT FATAL",
    // Broad union the cost-based planner sends to a full scan.
    "RAS OR KERNEL OR INFO OR FATAL",
    // Negative-only query: forced full scan.
    "NOT KERNEL",
    // Too many OR-terms for the 8 flag pairs: software fallback path.
    "t0 OR t1 OR t2 OR t3 OR t4 OR t5 OR t6 OR t7 OR t8 OR FATAL",
];

/// Runs the full query battery on one system, in a fixed order (the
/// transient-fault countdowns advance with each read attempt, so order is
/// part of the contract — identical per thread count is what matters).
fn run_battery(system: &mut MithriLog<FaultyStore<MemStore>>) -> Vec<QueryOutcome> {
    QUERIES
        .iter()
        .map(|q| system.query_str(q).unwrap())
        .collect()
}

#[test]
fn outcomes_are_identical_across_thread_counts_under_faults() {
    let ds = corpus(400_000);

    // Probe run: learn the data-page ids from a clean, identical ingest.
    let mut probe = MithriLog::new(SystemConfig::default());
    probe.ingest(ds.text()).unwrap();
    let data_pages: Vec<u64> = probe.data_pages().iter().map(|p| p.0).collect();
    let schedule = schedule(&data_pages);

    let mut reference: Option<Vec<QueryOutcome>> = None;
    for threads in 1..=8 {
        let mut system = faulted_system(ds.text(), threads, &schedule);
        assert_eq!(
            system.data_pages().iter().map(|p| p.0).collect::<Vec<_>>(),
            data_pages,
            "faulted ingest must lay out the same pages as the clean probe"
        );
        let outcomes = run_battery(&mut system);
        match &reference {
            None => {
                // Sanity on the k=1 reference: the drill actually bit.
                let full_scan = &outcomes[3];
                assert_eq!(
                    full_scan.degraded.skipped_pages,
                    vec![data_pages[1], data_pages[5], data_pages[8]],
                    "all three unrecoverable faults skip their page"
                );
                assert!(full_scan.degraded.retries > 0, "transient retries charged");
                assert!(full_scan.degraded.estimated_missed_lines > 0);
                assert!(outcomes.iter().any(|o| o.match_count() > 0));
                assert!(!outcomes[4].offloaded, "battery covers software fallback");
                reference = Some(outcomes);
            }
            Some(reference) => {
                for (i, (a, b)) in reference.iter().zip(&outcomes).enumerate() {
                    assert_outcomes_identical(
                        a,
                        b,
                        &format!("query {:?} at {threads} threads", QUERIES[i]),
                    );
                }
            }
        }
    }
}

#[test]
fn skipped_pages_stay_in_plan_order_when_scanned_in_parallel() {
    let ds = corpus(400_000);
    let mut probe = MithriLog::new(SystemConfig::default());
    probe.ingest(ds.text()).unwrap();
    let data_pages: Vec<u64> = probe.data_pages().iter().map(|p| p.0).collect();
    let schedule = schedule(&data_pages);

    let mut system = faulted_system(ds.text(), 8, &schedule);
    let outcome = system.query_str("NOT KERNEL").unwrap();
    let skipped = &outcome.degraded.skipped_pages;
    assert!(
        skipped.windows(2).all(|w| w[0] < w[1]),
        "skipped pages must come back sorted in plan order: {skipped:?}"
    );
    assert_eq!(skipped.len(), 3);
}

/// The fast variant CI runs on every push: two workers against the
/// sequential reference, one corpus, the full query battery.
#[test]
fn two_thread_scan_matches_sequential_reference() {
    let ds = corpus(150_000);
    let mut probe = MithriLog::new(SystemConfig::default());
    probe.ingest(ds.text()).unwrap();
    let data_pages: Vec<u64> = probe.data_pages().iter().map(|p| p.0).collect();
    let schedule = schedule(&data_pages);

    let mut sequential = faulted_system(ds.text(), 1, &schedule);
    let mut parallel = faulted_system(ds.text(), 2, &schedule);
    let reference = run_battery(&mut sequential);
    let outcomes = run_battery(&mut parallel);
    for (i, (a, b)) in reference.iter().zip(&outcomes).enumerate() {
        assert_outcomes_identical(a, b, &format!("query {:?} at 2 threads", QUERIES[i]));
    }
}
