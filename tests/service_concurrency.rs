//! Concurrent query service: determinism under concurrency and faults,
//! bounded-queue admission, and cross-query page sharing.
//!
//! The contract (DESIGN.md, "Concurrent query service"): for a fixed
//! snapshot, every query's outcome is **byte-identical** to running it
//! alone on a fresh, identically faulted system — however many queries run
//! concurrently, however the scheduler partitions them into waves. Only
//! `wall_time` may differ; what concurrency changes (physical reads
//! avoided by page-sharing fan-out) is reported separately.

use std::sync::Arc;

use mithrilog::{MithriLog, QueryOutcome, QueryRequest, SystemConfig};
use mithrilog_loggen::{generate, Dataset, DatasetProfile, DatasetSpec};
use mithrilog_service::{JobOutput, Priority, Service, ServiceConfig, SubmitError};
use mithrilog_storage::{FaultKind, FaultPlan, FaultyStore, MemStore};

fn corpus(target_bytes: usize) -> Dataset {
    generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes,
        seed: 7,
    })
}

/// Builds a faulted system over `text`; deterministic ingest means every
/// call lays out the identical device, so fresh systems are exact replicas.
fn faulted_system(text: &[u8], schedule: &[(u64, FaultKind)]) -> MithriLog<FaultyStore<MemStore>> {
    let config = SystemConfig::default();
    let mut plan = FaultPlan::seeded(99);
    for &(page, kind) in schedule {
        plan = plan.with_scheduled(page, kind);
    }
    let store = FaultyStore::new(MemStore::new(config.device.page_bytes), plan);
    let mut system = MithriLog::with_store(store, config).unwrap();
    system.ingest(text).unwrap();
    system
}

/// Data pages of a clean probe ingest (identical layout to faulted runs).
fn probe_data_pages(text: &[u8]) -> Vec<u64> {
    let mut probe = MithriLog::new(SystemConfig::default());
    probe.ingest(text).unwrap();
    probe.data_pages().iter().map(|p| p.0).collect()
}

/// Everything except wall-clock must be identical.
fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, context: &str) {
    assert_eq!(a.lines, b.lines, "{context}: matched lines");
    assert_eq!(a.offloaded, b.offloaded, "{context}: offload path");
    assert_eq!(a.used_index, b.used_index, "{context}: plan kind");
    assert_eq!(a.pages_scanned, b.pages_scanned, "{context}: plan size");
    assert_eq!(a.bytes_filtered, b.bytes_filtered, "{context}: bytes");
    assert_eq!(a.lines_scanned, b.lines_scanned, "{context}: lines scanned");
    assert_eq!(a.ledger, b.ledger, "{context}: cost ledger");
    assert_eq!(a.modeled_time, b.modeled_time, "{context}: modeled time");
    assert_eq!(a.degraded, b.degraded, "{context}: degraded report");
}

const QUERIES: [&str; 5] = [
    "FATAL",
    "KERNEL AND NOT FATAL",
    "RAS OR KERNEL OR INFO OR FATAL",
    "NOT KERNEL",
    "t0 OR t1 OR t2 OR t3 OR t4 OR t5 OR t6 OR t7 OR t8 OR FATAL",
];

/// One shared-scan batch under every fault mode — including transient-read
/// episodes, which drain exactly once per page in a single wave — versus
/// each query solo on its own fresh replica.
#[test]
fn shared_batch_under_faults_is_byte_identical_to_solo_runs() {
    let ds = corpus(400_000);
    let data_pages = probe_data_pages(ds.text());
    assert!(data_pages.len() >= 9);
    let schedule = vec![
        (data_pages[1], FaultKind::BitRot { bit: 5 }),
        (data_pages[3], FaultKind::TransientRead { failures: 2 }),
        (data_pages[5], FaultKind::TransientRead { failures: 50 }),
        (data_pages[8], FaultKind::TornWrite { valid_bytes: 100 }),
    ];

    let solo: Vec<QueryOutcome> = QUERIES
        .iter()
        .map(|q| faulted_system(ds.text(), &schedule).query_str(q).unwrap())
        .collect();

    let requests: Vec<QueryRequest> = QUERIES
        .iter()
        .map(|q| QueryRequest::parse(q).unwrap())
        .collect();
    let mut shared_system = faulted_system(ds.text(), &schedule);
    let batch = shared_system.query_shared(&requests).unwrap();

    for ((q, got), want) in QUERIES.iter().zip(&batch.outcomes).zip(&solo) {
        assert_outcomes_identical(got, want, &format!("query {q:?} in shared batch"));
    }
    // The drill actually bit: skips and retries present somewhere.
    assert!(batch
        .outcomes
        .iter()
        .any(|o| !o.degraded.skipped_pages.is_empty()));
    assert!(batch.outcomes.iter().any(|o| o.degraded.retries > 0));
    // Overlapping full scans shared physical reads.
    assert!(batch.shared.unique_pages_read < batch.shared.demanded_page_reads);
    assert_eq!(
        batch.shared.shared_reads_avoided,
        batch.shared.demanded_page_reads - batch.shared.unique_pages_read
    );
}

/// The acceptance drill: 8 concurrent queries over overlapping page
/// ranges issue strictly fewer device page reads than the 8 solo runs
/// summed, while every query's matched lines are byte-identical to its
/// solo run.
#[test]
fn eight_concurrent_overlapping_queries_share_reads() {
    let ds = corpus(300_000);
    let queries = [
        "FATAL",
        "KERNEL",
        "RAS OR KERNEL",
        "NOT KERNEL",
        "INFO",
        "KERNEL AND NOT FATAL",
        "RAS OR INFO OR FATAL",
        "NOT FATAL",
    ];

    // Solo baseline: each query on its own fresh system, device reads
    // measured per run and summed.
    let mut solo_lines = Vec::new();
    let mut solo_device_reads = 0u64;
    for q in queries {
        let mut system = MithriLog::new(SystemConfig::default());
        system.ingest(ds.text()).unwrap();
        let before = *system.device().ledger();
        let outcome = system.query_str(q).unwrap();
        solo_device_reads += system.device().ledger().since(&before).pages_read;
        solo_lines.push(outcome.lines);
    }

    // Concurrent: one shared batch on one system.
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(ds.text()).unwrap();
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::parse(q).unwrap())
        .collect();
    let before = *system.device().ledger();
    let batch = system.query_shared(&requests).unwrap();
    let concurrent_device_reads = system.device().ledger().since(&before).pages_read;

    for ((q, got), want) in queries.iter().zip(&batch.outcomes).zip(&solo_lines) {
        assert_eq!(
            &got.lines, want,
            "query {q:?}: matched lines must be byte-identical"
        );
    }
    assert!(
        concurrent_device_reads < solo_device_reads,
        "8 overlapping queries must issue strictly fewer device page reads \
         concurrently ({concurrent_device_reads}) than solo summed ({solo_device_reads})"
    );
    assert!(batch.shared.shared_reads_avoided > 0);
    // The device ledger's demand view reconciles: physical + avoided =
    // what the batch's queries asked for.
    assert_eq!(
        batch.shared.unique_pages_read + batch.shared.shared_reads_avoided,
        batch.shared.demanded_page_reads
    );
}

/// Multi-threaded submission through the service under persistent faults
/// (bit rot, torn write — wave-partition-independent failure modes): every
/// result byte-identical to a fresh solo replica, whatever waves formed.
#[test]
fn threaded_submissions_through_service_match_solo_runs() {
    let ds = corpus(250_000);
    let data_pages = probe_data_pages(ds.text());
    let schedule = vec![
        (data_pages[1], FaultKind::BitRot { bit: 3 }),
        (data_pages[4], FaultKind::TornWrite { valid_bytes: 64 }),
    ];

    let solo: Vec<QueryOutcome> = QUERIES
        .iter()
        .map(|q| faulted_system(ds.text(), &schedule).query_str(q).unwrap())
        .collect();

    let service = Service::spawn(
        faulted_system(ds.text(), &schedule),
        ServiceConfig {
            max_queue: 64,
            max_batch: 8,
            default_page_budget: None,
            ..ServiceConfig::default()
        },
    );
    let handle = Arc::new(service.handle());

    // 4 submitter threads × 3 rounds of the battery each, interleaved.
    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for round in 0..3 {
                    for (i, q) in QUERIES.iter().enumerate() {
                        let priority = match (t + round + i) % 3 {
                            0 => Priority::High,
                            1 => Priority::Normal,
                            _ => Priority::Low,
                        };
                        let id = handle.submit_str(q, priority).unwrap();
                        let output = handle.wait(id).unwrap();
                        results.push((i, output));
                    }
                }
                results
            })
        })
        .collect();

    for submitter in submitters {
        for (i, output) in submitter.join().unwrap() {
            let JobOutput::Query { outcome, .. } = output else {
                panic!("expected a query output");
            };
            assert_outcomes_identical(
                &outcome,
                &solo[i],
                &format!("query {:?} submitted concurrently", QUERIES[i]),
            );
        }
    }
    let stats = handle.stats();
    assert_eq!(stats.completed, 4 * 3 * QUERIES.len() as u64);
    assert_eq!(stats.failed, 0);
    service.shutdown();
}

/// Overload: a bounded queue rejects with an explicit error instead of
/// queueing without bound, and the pool keeps serving afterwards.
#[test]
fn overload_is_rejected_and_the_pool_recovers() {
    let ds = corpus(150_000);
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(ds.text()).unwrap();
    let service = Service::spawn(
        system,
        ServiceConfig {
            max_queue: 4,
            max_batch: 2,
            default_page_budget: None,
            ..ServiceConfig::default()
        },
    );
    let handle = Arc::new(service.handle());

    // 8 threads spam submissions; admission must never exceed the bound.
    let spammers: Vec<_> = (0..8)
        .map(|_| {
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                let mut admitted = Vec::new();
                let mut rejected = 0u64;
                for _ in 0..20 {
                    match handle.submit_str("NOT KERNEL", Priority::Low) {
                        Ok(id) => admitted.push(id),
                        Err(SubmitError::Rejected {
                            queue_full,
                            queue_len,
                            capacity,
                        }) => {
                            assert!(queue_full);
                            assert!(queue_len >= capacity, "{queue_len} < {capacity}");
                            rejected += 1;
                        }
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
                (admitted, rejected)
            })
        })
        .collect();

    let mut total_rejected = 0;
    let mut all_admitted = Vec::new();
    for spammer in spammers {
        let (admitted, rejected) = spammer.join().unwrap();
        all_admitted.extend(admitted);
        total_rejected += rejected;
    }
    assert!(
        total_rejected > 0,
        "160 rapid submissions against capacity 4 must overflow"
    );
    // Every admitted job settles — the pool is never wedged by overload.
    for id in all_admitted {
        handle.wait(id).expect("admitted job completes");
    }
    assert_eq!(handle.stats().rejected, total_rejected);
    let id = handle.submit_str("FATAL", Priority::High).unwrap();
    handle.wait(id).unwrap();
    service.shutdown();
}

/// Cancellation and deadline budgets: neither leaves the worker pool
/// wedged, budget overruns become degraded partial results (never hangs),
/// and cancel races resolve to exactly one of cancelled/completed.
#[test]
fn cancel_and_deadline_budgets_never_wedge_the_pool() {
    let ds = corpus(200_000);
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(ds.text()).unwrap();
    let total_pages = system.data_page_count();
    assert!(total_pages > 4);
    let service = Service::spawn(
        system,
        ServiceConfig {
            max_queue: 64,
            max_batch: 4,
            default_page_budget: None,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();

    // Flood with low-priority jobs, then cancel half of them while the
    // scheduler races through waves.
    let ids: Vec<_> = (0..24)
        .map(|_| handle.submit_str("NOT KERNEL", Priority::Low).unwrap())
        .collect();
    for id in ids.iter().step_by(2) {
        handle.cancel(*id); // racing the scheduler: either outcome is legal
    }
    for id in &ids {
        match handle.wait(*id) {
            Ok(JobOutput::Query { .. }) => {}
            Ok(other) => panic!("expected a query output, got {other:?}"),
            Err(reason) => assert_eq!(reason, "cancelled"),
        }
    }

    // A deadline budget clips the plan tail into a partial result.
    let budgeted = QueryRequest::parse("NOT KERNEL")
        .unwrap()
        .with_page_budget(2);
    let id = handle.submit(budgeted, Priority::High).unwrap();
    let JobOutput::Query { outcome, .. } = handle.wait(id).unwrap() else {
        panic!("expected a query output");
    };
    assert_eq!(outcome.pages_scanned, 2);
    assert_eq!(outcome.degraded.budget_clipped, total_pages - 2);
    assert!(outcome.degraded.is_lossy());

    // The pool still serves ordinary work afterwards.
    let id = handle.submit_str("FATAL", Priority::Normal).unwrap();
    let JobOutput::Query { outcome, .. } = handle.wait(id).unwrap() else {
        panic!("expected a query output");
    };
    assert!(outcome.match_count() > 0 || outcome.lines.is_empty());
    let stats = handle.stats();
    assert_eq!(stats.completed + stats.cancelled, 24 + 2);
    service.shutdown();
}
