//! Byte-identity of the multi-device shard layer.
//!
//! The invariant (DESIGN.md, "Shard layer"): for a fixed corpus and
//! routing epoch, an N-shard topology answers every query with the same
//! matched lines in the same order, the same global-ordinal line/page
//! attribution, the same cost-ledger totals, and the same degraded-read
//! report as a 1-shard run — under every fault mode the storage layer can
//! inject. Only `modeled_time` (devices run in parallel, so the slowest
//! shard bounds it) and `wall_time` may differ.
//!
//! Faults are planted by *global frame ordinal*, not physical page id: a
//! clean probe topology discovers which shard and store page holds frame
//! `g` under the persisted routing manifest, then a fresh topology
//! schedules the identical fault there — so all topologies corrupt the
//! same logical data.

use std::time::Duration;

use mithrilog::{MithriLog, QueryOutcome, QueryRequest, SystemConfig};
use mithrilog_loggen::{generate, Dataset, DatasetProfile, DatasetSpec};
use mithrilog_shard::{RouteMode, RoutingManifest, ShardedLog};
use mithrilog_storage::{FaultKind, FaultPlan, FaultyStore, MemStore};

const SALT: u64 = 0x5eed;
const TOPOLOGIES: [u32; 3] = [1, 2, 4];

/// The same battery as `tests/parallel_determinism.rs`: index hit,
/// offloaded negation, broad union, forced full scan, software fallback.
const QUERIES: [&str; 5] = [
    "FATAL",
    "KERNEL AND NOT FATAL",
    "RAS OR KERNEL OR INFO OR FATAL",
    "NOT KERNEL",
    "t0 OR t1 OR t2 OR t3 OR t4 OR t5 OR t6 OR t7 OR t8 OR FATAL",
];

/// A broad query whose plan is large enough to clip meaningfully.
const BROAD: &str = "RAS OR KERNEL OR INFO OR FATAL";

fn corpus() -> Dataset {
    generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 500_000,
        seed: 7,
    })
}

type Topology = ShardedLog<FaultyStore<MemStore>>;

/// Builds and ingests a topology with one fault plan per shard.
fn build_topology(text: &[u8], config: &SystemConfig, plans: Vec<FaultPlan>) -> Topology {
    let stores = plans
        .into_iter()
        .map(|plan| FaultyStore::new(MemStore::new(config.device.page_bytes), plan))
        .collect();
    let mut topology =
        ShardedLog::with_stores(stores, config.clone(), RouteMode::LineHash, SALT).unwrap();
    topology.ingest(text).unwrap();
    topology
}

fn clean_topology(text: &[u8], shards: u32, config: &SystemConfig) -> Topology {
    build_topology(text, config, vec![FaultPlan::seeded(99); shards as usize])
}

/// Global frame ordinal → (shard, store page id), derived from the
/// persisted routing manifest exactly as recovery would derive it.
fn frame_homes(topology: &Topology) -> Vec<(usize, u64)> {
    let manifest = RoutingManifest::decode(&topology.manifest_bytes()).unwrap();
    let mut next = vec![0usize; topology.shard_count()];
    let mut homes = Vec::new();
    for &(shard, count) in &manifest.runs {
        for _ in 0..count {
            let shard = shard as usize;
            homes.push((shard, topology.shard(shard).data_pages()[next[shard]].0));
            next[shard] += 1;
        }
    }
    homes
}

/// Builds a topology with `faults` planted by global frame ordinal: a
/// clean probe (identical deterministic ingest) learns where each frame
/// lands, then a fresh topology schedules the fault on that shard's page.
fn faulted_topology(
    text: &[u8],
    shards: u32,
    config: &SystemConfig,
    faults: &[(usize, FaultKind)],
) -> Topology {
    let probe = clean_topology(text, shards, config);
    let homes = frame_homes(&probe);
    let mut plans = vec![FaultPlan::seeded(99); shards as usize];
    for &(frame, kind) in faults {
        let (shard, page) = homes[frame];
        plans[shard] = plans[shard].clone().with_scheduled(page, kind);
    }
    build_topology(text, config, plans)
}

/// Everything topology-invariant must be identical; only modeled/wall
/// time legitimately change with shard count.
fn assert_identical(a: &QueryOutcome, b: &QueryOutcome, context: &str) {
    assert_eq!(a.lines, b.lines, "{context}: matched lines");
    assert_eq!(a.line_pages, b.line_pages, "{context}: line attribution");
    assert_eq!(a.offloaded, b.offloaded, "{context}: offload path");
    assert_eq!(a.used_index, b.used_index, "{context}: plan kind");
    assert_eq!(a.pages_scanned, b.pages_scanned, "{context}: plan size");
    assert_eq!(a.bytes_filtered, b.bytes_filtered, "{context}: bytes");
    assert_eq!(a.lines_scanned, b.lines_scanned, "{context}: lines scanned");
    assert_eq!(a.ledger, b.ledger, "{context}: cost ledger");
    assert_eq!(a.degraded, b.degraded, "{context}: degraded report");
}

fn run_battery(topology: &mut Topology) -> Vec<QueryOutcome> {
    QUERIES
        .iter()
        .map(|q| topology.query_str(q).unwrap())
        .collect()
}

/// The headline gate: 1-, 2-, and 4-shard topologies produce identical
/// results, ledgers, and degraded reports for the whole query battery,
/// under clean reads and all four fault modes. Full-scan configuration so
/// the ledger is pure data-path cost (index page layout is per-device and
/// the one cost that honestly differs across topologies).
#[test]
fn outcomes_are_identical_across_topologies_under_every_fault_mode() {
    let ds = corpus();
    let config = SystemConfig::full_scan_only();
    let frames = frame_homes(&clean_topology(ds.text(), 1, &config)).len();
    assert!(frames >= 9, "corpus must span enough frames, got {frames}");

    let modes: [(&str, Vec<(usize, FaultKind)>); 5] = [
        ("clean", vec![]),
        ("bit-rot", vec![(1, FaultKind::BitRot { bit: 5 })]),
        (
            "torn-write",
            vec![(4, FaultKind::TornWrite { valid_bytes: 100 })],
        ),
        (
            "transient-recoverable",
            vec![(3, FaultKind::TransientRead { failures: 2 })],
        ),
        (
            "transient-unrecoverable",
            vec![(5, FaultKind::TransientRead { failures: 50 })],
        ),
    ];
    for (mode, faults) in &modes {
        let mut reference: Option<Vec<QueryOutcome>> = None;
        for shards in TOPOLOGIES {
            let mut topology = faulted_topology(ds.text(), shards, &config, faults);
            let outcomes = run_battery(&mut topology);
            match &reference {
                None => {
                    // Sanity on the 1-shard reference: the drill bit where
                    // it was supposed to.
                    let full_scan = &outcomes[3];
                    match *mode {
                        "clean" => assert_eq!(full_scan.degraded.skipped_pages.len(), 0),
                        "transient-recoverable" => {
                            // The episode counts down per read, so the first
                            // query in the battery absorbs the retries.
                            assert!(
                                outcomes[0].degraded.retries > 0,
                                "{mode}: retries charged on the first read"
                            );
                            assert_eq!(full_scan.degraded.skipped_pages.len(), 0);
                        }
                        _ => assert!(
                            !full_scan.degraded.skipped_pages.is_empty(),
                            "{mode}: a page must have been skipped"
                        ),
                    }
                    reference = Some(outcomes);
                }
                Some(reference) => {
                    for (i, (a, b)) in reference.iter().zip(&outcomes).enumerate() {
                        assert_identical(
                            a,
                            b,
                            &format!("{mode}, {shards} shards, query {:?}", QUERIES[i]),
                        );
                    }
                }
            }
        }
    }
}

/// The same identity holds with the token index and bitmap sidecars
/// enabled — results and degraded accounting are topology-invariant; only
/// the ledger is excluded (each device carries its own index layout, so
/// physical index-read costs differ honestly).
#[test]
fn indexed_results_are_identical_across_topologies() {
    let ds = corpus();
    let config = SystemConfig::default();
    let faults = vec![(2, FaultKind::BitRot { bit: 3 })];
    let mut reference: Option<Vec<QueryOutcome>> = None;
    for shards in TOPOLOGIES {
        let mut topology = faulted_topology(ds.text(), shards, &config, &faults);
        let outcomes = run_battery(&mut topology);
        match &reference {
            None => reference = Some(outcomes),
            Some(reference) => {
                for (i, (a, b)) in reference.iter().zip(&outcomes).enumerate() {
                    let context = format!("indexed, {shards} shards, query {:?}", QUERIES[i]);
                    assert_eq!(a.lines, b.lines, "{context}: matched lines");
                    assert_eq!(a.line_pages, b.line_pages, "{context}: attribution");
                    assert_eq!(a.degraded, b.degraded, "{context}: degraded report");
                }
            }
        }
    }
}

/// Worker-thread count never changes a sharded outcome (the per-device
/// guarantee of `tests/parallel_determinism.rs` survives the merge).
#[test]
fn thread_count_does_not_change_sharded_outcomes() {
    let ds = corpus();
    let faults = vec![
        (1, FaultKind::BitRot { bit: 5 }),
        (3, FaultKind::TransientRead { failures: 2 }),
    ];
    let mut reference: Option<Vec<QueryOutcome>> = None;
    for threads in [1usize, 2, 3] {
        let config = SystemConfig {
            query_threads: threads,
            ..SystemConfig::full_scan_only()
        };
        let mut topology = faulted_topology(ds.text(), 2, &config, &faults);
        let outcomes = run_battery(&mut topology);
        match &reference {
            None => reference = Some(outcomes),
            Some(reference) => {
                for (i, (a, b)) in reference.iter().zip(&outcomes).enumerate() {
                    assert_identical(a, b, &format!("{threads} threads, query {:?}", QUERIES[i]));
                }
            }
        }
    }
}

/// A shard hitting its page-budget or deadline clip produces exactly the
/// degraded accounting of the equivalent solo device: a 1-shard topology
/// and a plain `MithriLog` answer a clipped request identically (the
/// topology reports pages as global frame ordinals; the solo run as store
/// page ids — translated through the frame order, they are the same
/// pages).
#[test]
fn budget_and_deadline_clips_match_the_equivalent_solo_run() {
    let ds = corpus();
    let config = SystemConfig::full_scan_only();
    let store = FaultyStore::new(
        MemStore::new(config.device.page_bytes),
        FaultPlan::seeded(99),
    );
    let mut solo = MithriLog::with_store(store, config.clone()).unwrap();
    solo.ingest(ds.text()).unwrap();
    let solo_frames: Vec<u64> = solo.data_pages().iter().map(|p| p.0).collect();
    let ordinal_of = |page: u64| -> u64 {
        solo_frames
            .iter()
            .position(|&p| p == page)
            .map(|i| i as u64)
            .expect("skipped page must be a data page")
    };
    let mut topology = clean_topology(ds.text(), 1, &config);

    let cases: [(&str, Option<u64>, Option<Duration>); 3] = [
        ("page budget 3", Some(3), None),
        ("zero budget", Some(0), None),
        ("30us deadline", None, Some(Duration::from_micros(30))),
    ];
    for (context, budget, deadline) in cases {
        let mut request = QueryRequest::parse(BROAD).unwrap();
        request.page_budget = budget;
        request.deadline = deadline;
        let solo_out = solo
            .query_shared(std::slice::from_ref(&request))
            .unwrap()
            .outcomes
            .remove(0);
        let topo_out = topology.query_request(request).unwrap();
        assert_eq!(solo_out.lines, topo_out.lines, "{context}: matched lines");
        assert_eq!(
            solo_out.degraded.budget_clipped, topo_out.degraded.budget_clipped,
            "{context}: budget clips"
        );
        assert_eq!(
            solo_out.degraded.deadline_clipped, topo_out.degraded.deadline_clipped,
            "{context}: deadline clips"
        );
        assert_eq!(
            solo_out.degraded.retries, topo_out.degraded.retries,
            "{context}: retries"
        );
        assert_eq!(
            solo_out.degraded.estimated_missed_lines, topo_out.degraded.estimated_missed_lines,
            "{context}: missed-line estimate"
        );
        let solo_skipped: Vec<u64> = solo_out
            .degraded
            .skipped_pages
            .iter()
            .map(|&p| ordinal_of(p))
            .collect();
        assert_eq!(
            solo_skipped, topo_out.degraded.skipped_pages,
            "{context}: skipped pages (as global ordinals)"
        );
        assert_eq!(solo_out.ledger, topo_out.ledger, "{context}: cost ledger");
        let clipped = solo_out.degraded.budget_clipped + solo_out.degraded.deadline_clipped;
        assert!(clipped > 0, "{context}: the clip must actually bite");
    }
}

/// Quarantined pages (scrub fallout) produce identical degraded
/// accounting on every topology: quarantining global frame `g` skips the
/// same logical data and reports the same global ordinal everywhere.
#[test]
fn quarantined_pages_degrade_identically_across_topologies() {
    let ds = corpus();
    let config = SystemConfig::full_scan_only();
    let quarantined: [usize; 2] = [2, 6];
    let mut reference: Option<QueryOutcome> = None;
    for shards in TOPOLOGIES {
        let mut topology = clean_topology(ds.text(), shards, &config);
        let homes = frame_homes(&topology);
        for &frame in &quarantined {
            let (shard, page) = homes[frame];
            topology.shard_mut(shard).device_mut().quarantine_page(page);
        }
        let outcome = topology.query_str(BROAD).unwrap();
        assert_eq!(
            outcome.degraded.skipped_pages,
            quarantined.map(|f| f as u64).to_vec(),
            "{shards} shards: quarantined frames reported as global ordinals"
        );
        match &reference {
            None => reference = Some(outcome),
            Some(reference) => {
                assert_identical(reference, &outcome, &format!("{shards} shards, quarantine"));
            }
        }
    }
}
