//! Seeded end-to-end fault-recovery acceptance tests.
//!
//! Everything here is driven by a deterministic [`FaultPlan`]: same seed,
//! same faults, same outcome, every run. The tests cover the three
//! recovery layers plus the index-corruption fallback:
//!
//! 1. `scrub()` finds *exactly* the pages the plan corrupted;
//! 2. a query over a bit-flipped corpus completes, reporting the skipped
//!    pages and an estimate of the lines lost;
//! 3. transient read errors are retried, with each re-read charged to the
//!    cost ledger as a full flash-access latency;
//! 4. a corrupt index page downgrades the plan to a filtered full scan —
//!    results stay complete, only the pruning is lost.
//!
//! Power-loss cases ride on the same determinism contract through
//! [`CrashPlan`]: a crash mid-commit recovers to the acknowledged prefix,
//! and a torn superblock slot falls back to the previous commit. The
//! exhaustive every-operation sweep lives in `tests/crash_matrix.rs`.

use mithrilog::{MithriLog, MithriLogError, SystemConfig};
use mithrilog_loggen::{generate, Dataset, DatasetProfile, DatasetSpec};
use mithrilog_storage::{
    read_active_superblock, CrashPlan, CrashStore, FaultKind, FaultPlan, FaultyStore, Link,
    MemStore, PageId, PageStore, RetryPolicy, SimSsd, StorageError, Superblock,
};

fn corpus() -> Dataset {
    generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 1_000_000,
        seed: 7,
    })
}

fn faulted_system(plan: FaultPlan) -> MithriLog<FaultyStore<MemStore>> {
    let config = SystemConfig::default();
    let store = FaultyStore::new(MemStore::new(config.device.page_bytes), plan);
    let mut system = MithriLog::with_store(store, config).unwrap();
    system.ingest(corpus().text()).unwrap();
    system
}

#[test]
fn scrub_finds_exactly_the_injected_corruption() {
    let plan = FaultPlan::seeded(31)
        .with_bit_rot_rate(0.03)
        .with_scheduled(2, FaultKind::BitRot { bit: 9 })
        .with_scheduled(4, FaultKind::TornWrite { valid_bytes: 80 });
    let mut system = faulted_system(plan);

    let report = system.scrub();
    let found: Vec<u64> = report.corrupt.iter().map(|c| c.page).collect();
    let planted = system.device().store().corrupted_pages();
    assert!(!planted.is_empty(), "the plan must actually corrupt pages");
    assert_eq!(found, planted, "scrub must find exactly the planted faults");
    assert!(!report.is_clean());
    assert!(
        report.unreadable.is_empty(),
        "bit rot is detectable, not fatal"
    );
    assert_eq!(report.pages_checked, system.device().page_count());
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let plan = || FaultPlan::seeded(99).with_bit_rot_rate(0.05);
    let a = faulted_system(plan());
    let b = faulted_system(plan());
    let injected_a = a.device().store().injected();
    assert_eq!(injected_a, b.device().store().injected());
    assert!(!injected_a.is_empty());

    // A different seed draws a different fault pattern.
    let c = faulted_system(FaultPlan::seeded(100).with_bit_rot_rate(0.05));
    assert_ne!(injected_a, c.device().store().injected());
}

#[test]
fn query_over_bit_flipped_corpus_degrades_gracefully() {
    let plan = FaultPlan::seeded(31).with_bit_rot_rate(0.05);
    let mut system = faulted_system(plan);
    let rotten = system.device().store().corrupted_pages();
    assert!(!rotten.is_empty());

    let outcome = system.query_str("FATAL OR error").unwrap();
    let degraded = outcome.degraded.clone();
    assert!(
        degraded.is_lossy(),
        "some data pages must have been skipped"
    );
    assert!(
        degraded.skipped_pages.iter().all(|p| rotten.contains(p)),
        "only planted pages may be skipped: {:?} vs {rotten:?}",
        degraded.skipped_pages
    );
    assert!(degraded.estimated_missed_lines > 0);
    assert!(
        !degraded.index_fallback,
        "data corruption leaves the plan intact"
    );
    assert!(
        outcome.match_count() > 0,
        "the surviving pages still produce matches"
    );

    // Same seed, fresh system: the degradation report is identical.
    let mut again = faulted_system(FaultPlan::seeded(31).with_bit_rot_rate(0.05));
    let outcome2 = again.query_str("FATAL OR error").unwrap();
    assert_eq!(outcome2.degraded.skipped_pages, degraded.skipped_pages);
    assert_eq!(outcome2.match_count(), outcome.match_count());
}

#[test]
fn transient_reads_are_retried_and_charged_to_the_ledger() {
    let plan = FaultPlan::seeded(5).with_transient_rate(0.25, 1);
    let mut system = faulted_system(plan);
    assert!(system.device().retry_policy().max_attempts >= 2);

    let outcome = system.query_str("FATAL OR error").unwrap();
    assert!(
        outcome.ledger.retries > 0,
        "transient pages must trigger retries"
    );
    assert_eq!(outcome.degraded.retries, outcome.ledger.retries);
    assert!(
        !outcome.degraded.is_lossy(),
        "transient faults recover within the retry budget — no data lost"
    );

    // Each retry costs one full flash-access latency in the model.
    let model = *system.device().model();
    let mut without_retries = outcome.ledger;
    without_retries.retries = 0;
    let charged = outcome.ledger.modeled_read_time(&model, Link::Internal)
        - without_retries.modeled_read_time(&model, Link::Internal);
    assert_eq!(charged, model.read_latency * outcome.ledger.retries as u32);
}

#[test]
fn exhausted_retries_skip_the_page_instead_of_failing_the_query() {
    // Three consecutive failures against a two-attempt budget: the page is
    // reported as skipped, not returned as a hard error.
    let plan = FaultPlan::seeded(5).with_transient_rate(0.25, 3);
    let mut system = faulted_system(plan);
    system
        .device_mut()
        .set_retry_policy(RetryPolicy { max_attempts: 2 })
        .unwrap();

    let outcome = system.query_str("FATAL OR error").unwrap();
    assert!(
        outcome.degraded.is_lossy(),
        "budget-exhausted pages are skipped"
    );
    assert!(outcome.ledger.retries > 0);
    assert!(outcome.match_count() > 0);
}

/// Splits the corpus near the middle on a line boundary.
fn split_point(text: &[u8]) -> usize {
    let mut split = text.len() / 2;
    while text[split] != b'\n' {
        split += 1;
    }
    split + 1
}

#[test]
fn crash_during_commit_recovers_to_the_acknowledged_prefix() {
    let config = SystemConfig::for_tests();
    let data = corpus();
    let text = data.text();
    let split = split_point(text);

    // Size the first batch's op footprint with the power held up, then
    // replay with the plug pulled a few operations into the second batch.
    let ops_after_first = {
        let store = CrashStore::new(MemStore::new(config.device.page_bytes), CrashPlan::never());
        let mut s = MithriLog::with_store(store, config.clone()).unwrap();
        s.ingest(&text[..split]).unwrap();
        s.device().store().ops()
    };
    let plan = CrashPlan::crash_at(ops_after_first + 5).with_seed(1234);
    let (store, handle) = CrashStore::with_handle(MemStore::new(config.device.page_bytes), plan);
    let mut s = MithriLog::with_store(store, config.clone()).unwrap();
    let first = s.ingest(&text[..split]).unwrap();
    let err = s.ingest(&text[split..]).unwrap_err();
    assert!(
        matches!(err, MithriLogError::Storage(StorageError::Crashed { .. })),
        "{err}"
    );
    drop(s);

    let (mut recovered, report) = MithriLog::open_store(handle.snapshot(), config).unwrap();
    assert_eq!(report.superblock_sequence, 1, "{report}");
    assert_eq!(recovered.lines(), first.lines, "acked lines must survive");
    let dump = recovered.query_str("NOT zz-absent-token-zz").unwrap();
    assert_eq!(dump.match_count(), first.lines, "no partial batch visible");
}

#[test]
fn torn_superblock_falls_back_to_the_previous_commit() {
    let config = SystemConfig::for_tests();
    let data = corpus();
    let text = data.text();
    let split = split_point(text);

    let (store, handle) =
        CrashStore::with_handle(MemStore::new(config.device.page_bytes), CrashPlan::never());
    let mut system = MithriLog::with_store(store, config.clone()).unwrap();
    let first = system.ingest(&text[..split]).unwrap();
    system.ingest(&text[split..]).unwrap();
    drop(system);
    let mut durable = handle.snapshot();

    let active = {
        let mut probe = SimSsd::new(durable.clone(), config.device);
        read_active_superblock(&mut probe).unwrap()
    };
    assert_eq!(active.sequence, 2, "one commit per ingest call");

    // Tear the active slot mid-record, as a power loss during the flip
    // would: its CRC no longer validates, so the mount must fall back to
    // the older slot — the previous commit.
    let slot_page = PageId(active.sequence % Superblock::SLOTS);
    let torn = durable.read_page(slot_page).unwrap()[..20].to_vec();
    durable.write_page(slot_page, &torn).unwrap();

    let (mut recovered, report) = MithriLog::open_store(durable.clone(), config.clone()).unwrap();
    assert_eq!(report.superblock_sequence, active.sequence - 1, "{report}");
    assert_eq!(recovered.lines(), first.lines);
    assert!(
        report.uncommitted_pages_discarded > 0,
        "the second commit's pages become the discarded tail"
    );
    let dump = recovered.query_str("NOT zz-absent-token-zz").unwrap();
    assert_eq!(dump.match_count(), first.lines);

    // With both slots gone there is nothing left to mount.
    durable.write_page(PageId(0), b"xx").unwrap();
    durable.write_page(PageId(1), b"xx").unwrap();
    assert!(MithriLog::open_store(durable, config).is_err());
}

#[test]
fn index_corruption_falls_back_to_a_filtered_full_scan() {
    let mut text = String::new();
    for i in 0..4000 {
        text.push_str(&format!("routine filler line number {i}\n"));
    }
    text.push_str("unique-needle-token appears once\n");
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(text.as_bytes()).unwrap();
    // Flush the index to storage so lookups must actually read pages.
    system.snapshot_at(1).unwrap();

    let baseline = system.query_str("unique-needle-token").unwrap();
    assert_eq!(baseline.match_count(), 1);
    assert!(baseline.used_index);

    // Smash every non-data page *behind* the controller: checksums go
    // stale, so any index lookup that touches storage sees `Corrupt`.
    let data: Vec<u64> = system.data_pages().iter().map(|p| p.0).collect();
    let total = system.device().page_count();
    let page_bytes = system.device().page_bytes();
    for page in (0..total).filter(|p| !data.contains(p)) {
        let garbage = vec![0x5Au8; page_bytes];
        system
            .device_mut()
            .store_mut()
            .write_page(mithrilog_storage::PageId(page), &garbage)
            .unwrap();
    }

    let outcome = system.query_str("unique-needle-token").unwrap();
    assert!(
        outcome.degraded.index_fallback,
        "a corrupt index must downgrade the plan, not kill the query"
    );
    assert!(!outcome.used_index);
    assert_eq!(
        outcome.match_count(),
        1,
        "the full-scan fallback keeps results complete"
    );
    assert!(
        !outcome.degraded.is_lossy(),
        "data pages are intact; only the index was lost"
    );
}
