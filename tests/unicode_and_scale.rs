//! UTF-8 robustness and an opt-in larger-scale soak.
//!
//! Logs are treated as byte streams throughout (the hardware never decodes
//! text), but real logs contain UTF-8 — node names, user names, message
//! fragments — so multi-byte sequences must survive compression, word
//! splitting, filtering and indexing byte-exactly.

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_compress::{Codec, Lzah};
use mithrilog_filter::FilterPipeline;
use mithrilog_query::{parse, Query};
use mithrilog_tokenizer::{Tokenizer, TokenizerConfig};

const UTF8_LOG: &str = "\
- 1000 2005.06.03 nœud-01 service démarré avec succès\n\
- 1001 2005.06.03 node-02 ユーザー ログイン 成功\n\
- 1002 2005.06.03 nœud-01 erreur: défaillance du disque\n\
- 1003 2005.06.03 node-03 Grüße von der Überwachung\n\
- 1004 2005.06.03 node-02 ユーザー ログアウト\n";

#[test]
fn utf8_tokens_survive_word_splitting() {
    // Multi-byte tokens longer than 16 bytes split across datapath words
    // at byte (not char) boundaries and must reassemble exactly.
    let tok = Tokenizer::new(TokenizerConfig::default());
    for line in UTF8_LOG.lines() {
        let words = tok.tokenize_line(line.as_bytes());
        let mut rebuilt: Vec<Vec<u8>> = Vec::new();
        let mut cur = Vec::new();
        for w in &words {
            cur.extend_from_slice(w.token_bytes());
            if w.is_last_of_token() {
                rebuilt.push(std::mem::take(&mut cur));
            }
        }
        let expected: Vec<Vec<u8>> = line
            .split_ascii_whitespace()
            .map(|t| t.as_bytes().to_vec())
            .collect();
        assert_eq!(rebuilt, expected, "line {line:?}");
    }
}

#[test]
fn utf8_queries_filter_correctly() {
    let queries = ["ユーザー AND 成功", "nœud-01 AND NOT erreur:", "Grüße"];
    for qs in queries {
        let q = parse(qs).unwrap();
        let p = FilterPipeline::compile(&q).unwrap();
        let kept = p.filter_text(UTF8_LOG.as_bytes()).count();
        let want = UTF8_LOG.lines().filter(|l| q.matches_line(l)).count();
        assert_eq!(kept, want, "query {qs:?}");
    }
}

#[test]
fn utf8_round_trips_through_the_full_system() {
    let mut system = MithriLog::new(SystemConfig::for_tests());
    system.ingest(UTF8_LOG.as_bytes()).unwrap();
    let o = system.query_str("ユーザー").unwrap();
    assert_eq!(o.match_count(), 2);
    assert!(o.lines.iter().all(|l| l.contains("ユーザー")));
    let o = system.query_str("nœud-01 AND erreur:").unwrap();
    assert_eq!(o.match_count(), 1);
    assert!(o.lines[0].contains("défaillance"));
}

#[test]
fn utf8_lzah_round_trip_is_byte_exact() {
    let c = Lzah::default();
    let repeated = UTF8_LOG.repeat(100);
    assert_eq!(
        c.decompress(&c.compress(repeated.as_bytes())).unwrap(),
        repeated.as_bytes()
    );
}

/// Larger-scale soak, skipped by default (run with `cargo test --release
/// -- --ignored`): 20 MB through the whole system, cross-checked against
/// the reference evaluator on a handful of queries.
#[test]
#[ignore = "large: ~20 MB end-to-end; run explicitly in release"]
fn twenty_megabyte_soak() {
    use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
    let text = generate(&DatasetSpec {
        profile: DatasetProfile::Thunderbird,
        target_bytes: 20_000_000,
        seed: 77,
    })
    .into_text();
    let mut system = MithriLog::new(SystemConfig::default());
    let report = system.ingest(&text).unwrap();
    assert_eq!(report.raw_bytes as usize, text.len());
    for qs in [
        "ib_sm.x[24583]:",
        "Failed AND password",
        "session AND NOT closed",
        "NOT kernel:",
    ] {
        let q: Query = parse(qs).unwrap();
        let got = system.query(&q).unwrap().match_count();
        let want = std::str::from_utf8(&text)
            .unwrap()
            .lines()
            .filter(|l| q.matches_line(l))
            .count() as u64;
        assert_eq!(got, want, "query {qs:?}");
    }
}
