//! Steady-state allocation accounting for the scan hot path.
//!
//! A counting `#[global_allocator]` (vendored here — the library crates
//! forbid unsafe code, but an integration-test binary is its own crate
//! root) measures heap allocations across a whole query. After a warm-up
//! query establishes scratch capacity, a no-match full scan must allocate
//! O(1) per query — strictly fewer allocations than it scans pages. The
//! pre-scratch path allocated at least a decoder table and an output
//! buffer per page, so this bound fails loudly on any regression that
//! reintroduces per-page allocation.
//!
//! This file intentionally holds a single `#[test]`: the allocator count
//! is global to the test binary, and a concurrently running test would
//! pollute the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

/// Counts every allocation (fresh, zeroed, and growth reallocations) and
/// delegates the actual memory management to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_scan_allocates_o1_per_query_not_per_page() {
    // Single inline worker (no thread-spawn allocations), no index (force
    // the full-scan hot path), no cache (inserting into the cache copies
    // page text by design — this test isolates the scan kernel itself).
    let config = SystemConfig {
        use_index: false,
        query_threads: 1,
        page_cache_bytes: 0,
        ..SystemConfig::default()
    };
    let ds = generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 2_000_000,
        seed: 3,
    });
    let mut system = MithriLog::new(config);
    system.ingest(ds.text()).unwrap();
    let pages = system.data_page_count();
    assert!(pages > 100, "corpus must span enough pages ({pages})");

    // Warm-up: establishes decoder-table/word/output capacity in the
    // worker scratch and promotes the store's page buffers to shared
    // handles. A no-match query keeps the output path out of the picture.
    let query = "zz-no-such-token-zz";
    let warm = system.query_str(query).unwrap();
    assert_eq!(warm.match_count(), 0);
    assert_eq!(warm.pages_scanned, pages);

    // Steady state: one full query, measured end to end (parse, plan,
    // compile, scan, outcome assembly). The per-query fixed allocations
    // are dozens; anything proportional to the page count means the page
    // loop regressed.
    let before = allocations();
    let outcome = system.query_str(query).unwrap();
    let delta = allocations() - before;
    assert_eq!(outcome.match_count(), 0);
    assert_eq!(outcome.pages_scanned, pages);
    assert!(
        delta < pages,
        "a steady-state no-match scan of {pages} pages allocated {delta} \
         times — the page loop must not allocate per page"
    );
}
