//! Integration of the analytics layer with the full system: extract an
//! event class with the accelerated query path, then aggregate.

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_analytics::{
    extract_epoch, EventMatrix, PcaModel, RateSpikeDetector, TemplateCounts, TimeHistogram,
    TopTokens,
};
use mithrilog_filter::FilterPipeline;
use mithrilog_ftree::{FtreeConfig, TemplateLibrary};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

fn corpus_with_burst() -> (Vec<u8>, u64) {
    let mut text = generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: 400_000,
        seed: 8,
    })
    .into_text();
    // A low steady rate of failures over half an hour...
    let base_epoch = 1_102_198_000u64;
    for minute in 0..30u64 {
        for i in 0..5u64 {
            text.extend_from_slice(
                format!(
                    "- {} 2004.12.04 liberty009 Dec 4 08:{:02}:{:02} liberty009/liberty009 \
                     sshd[4242]: Failed password for root from 10.1.2.{} port 999 ssh2\n",
                    base_epoch + minute * 60 + i * 11,
                    30 + minute % 30,
                    i * 11,
                    i + 1
                )
                .as_bytes(),
            );
        }
    }
    // ...then a brute-force burst within one minute.
    let burst_epoch = base_epoch + 30 * 60;
    for i in 0..300 {
        text.extend_from_slice(
            format!(
                "- {} 2004.12.04 liberty009 Dec 4 09:00:{:02} liberty009/liberty009 \
                 sshd[4242]: Failed password for root from 10.1.2.{} port 999 ssh2\n",
                burst_epoch + i / 20,
                i % 60,
                i % 200 + 1
            )
            .as_bytes(),
        );
    }
    (text, burst_epoch)
}

#[test]
fn filtered_events_histogram_and_spike() {
    let (text, burst_epoch) = corpus_with_burst();
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(&text).unwrap();

    let outcome = system.query_str("Failed AND password").unwrap();
    assert!(outcome.match_count() >= 300);

    let mut h = TimeHistogram::new(60);
    h.record_lines(outcome.lines.iter().map(String::as_str));
    assert_eq!(h.total(), outcome.match_count());

    let spikes = RateSpikeDetector::new(2.0).detect(&h);
    assert!(
        spikes
            .iter()
            .any(|s| s.bucket_start.abs_diff(burst_epoch) < 120),
        "burst at {burst_epoch} not among spikes {spikes:?}"
    );
}

#[test]
fn template_counts_partition_matches_library_classification() {
    let (text, _) = corpus_with_burst();
    let library = TemplateLibrary::extract(
        &text,
        &FtreeConfig {
            min_support: 8,
            max_children: 24,
            max_depth: 12,
            min_leaf_fraction: 0.0002,
        },
    );
    let ids: Vec<usize> = (0..library.len().min(6)).collect();
    let joined = library.joined_query(&ids);
    let pipeline = FilterPipeline::compile(&joined).unwrap();
    let counts = TemplateCounts::scan(&pipeline, &text);

    let total_lines = text.iter().filter(|&&b| b == b'\n').count() as u64;
    assert_eq!(counts.total(), total_lines);
    let summed: u64 = (0..ids.len()).map(|i| counts.count(i)).sum::<u64>() + counts.unmatched();
    assert_eq!(summed, total_lines, "tag counts must partition the corpus");

    // Each set's count equals the number of lines its template query
    // matches *minus* lines claimed by an earlier set (first-match wins).
    let lines: Vec<&str> = std::str::from_utf8(&text).unwrap().lines().collect();
    let mut expected = vec![0u64; ids.len()];
    for line in &lines {
        for (slot, &id) in ids.iter().enumerate() {
            if library.templates()[id].matches_line(line) {
                expected[slot] += 1;
                break;
            }
        }
    }
    for (slot, &want) in expected.iter().enumerate() {
        assert_eq!(counts.count(slot), want, "slot {slot}");
    }
}

#[test]
fn top_tokens_surface_the_event_signature() {
    let (text, _) = corpus_with_burst();
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(&text).unwrap();
    let outcome = system.query_str("Failed AND password").unwrap();

    let mut top = TopTokens::new();
    for line in &outcome.lines {
        top.record_line(line);
    }
    let tokens: Vec<&str> = top.top(20).into_iter().map(|(t, _)| t).collect();
    assert!(tokens.contains(&"Failed"));
    assert!(tokens.contains(&"password"));
}

#[test]
fn pca_over_tagged_windows_flags_the_burst_window() {
    // One tagged accelerator pass builds the event count matrix (Xu et al.
    // via MithriLog extraction), and PCA flags the injected brute-force
    // window whose template mix breaks the normal correlation structure.
    let (text, burst_epoch) = corpus_with_burst();
    let library = TemplateLibrary::extract(
        &text,
        &FtreeConfig {
            min_support: 8,
            max_children: 24,
            max_depth: 12,
            min_leaf_fraction: 0.0002,
        },
    );
    let k = library.len().min(8);
    let ids: Vec<usize> = (0..k).collect();
    let joined = library.joined_query(&ids);
    let pipeline = FilterPipeline::compile(&joined).unwrap();

    let mut matrix = EventMatrix::new(60, k + 1); // last column = untagged
    for (line, tag) in pipeline.tag_text(&text) {
        let line = std::str::from_utf8(line).unwrap();
        if let Some(epoch) = extract_epoch(line) {
            matrix.record(epoch, tag.unwrap_or(k));
        }
    }
    assert!(matrix.windows() >= 5, "{} windows", matrix.windows());

    // The burst windows contain ONLY failure lines — a template mix that
    // never occurs in healthy windows — so their residuals must dominate.
    let model = PcaModel::fit(&matrix, 1);
    let burst_window = burst_epoch / 60 * 60;
    let mut residuals: Vec<(u64, f64)> = (0..matrix.windows())
        .map(|w| (matrix.window_start(w), model.residual(matrix.row(w))))
        .collect();
    residuals.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top: Vec<u64> = residuals.iter().take(3).map(|(s, _)| *s).collect();
    assert!(
        top.iter().any(|s| s.abs_diff(burst_window) <= 120),
        "burst at {burst_window} not among top residual windows {residuals:?}"
    );
}

#[test]
fn epoch_extraction_works_on_all_profiles() {
    for profile in DatasetProfile::all() {
        let ds = generate(&DatasetSpec {
            profile,
            target_bytes: 50_000,
            seed: 5,
        });
        let text = std::str::from_utf8(ds.text()).unwrap();
        for line in text.lines().take(50) {
            assert!(
                extract_epoch(line).is_some(),
                "{profile:?} line {line:?} has no epoch"
            );
        }
    }
}
