//! Page-cache correctness acceptance tests.
//!
//! The decompressed-page cache is a purely physical optimization: query
//! outcomes — matched lines, as-if-solo cost ledgers, modeled times, and
//! degraded-read reports — must be byte-identical with the cache on or
//! off, under every fault-injection mode. These tests run the same query
//! sequence on a cached and an uncached system built from the same seeded
//! fault plan and compare everything except wall-clock time.
//!
//! The staleness test proves the per-segment generation keys: ingest is
//! append-only, so the cache stays warm across it and the new line is
//! still observed; mutable device access (a corruption drill) retires
//! every segment's generation, so nothing cached before it survives.

use mithrilog::{MithriLog, QueryOutcome, SystemConfig};
use mithrilog_loggen::{generate, Dataset, DatasetProfile, DatasetSpec};
use mithrilog_storage::{FaultKind, FaultPlan, FaultyStore, MemStore};

fn corpus() -> Dataset {
    generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 400_000,
        seed: 11,
    })
}

fn config(page_cache_bytes: u64) -> SystemConfig {
    SystemConfig {
        page_cache_bytes,
        ..SystemConfig::default()
    }
}

fn faulted_system(plan: FaultPlan, page_cache_bytes: u64) -> MithriLog<FaultyStore<MemStore>> {
    let config = config(page_cache_bytes);
    let store = FaultyStore::new(MemStore::new(config.device.page_bytes), plan);
    let mut system = MithriLog::with_store(store, config).unwrap();
    system.ingest(corpus().text()).unwrap();
    system
}

/// Everything a query observed except wall-clock time (the one
/// legitimately nondeterministic field).
fn observed(o: &QueryOutcome) -> impl std::fmt::Debug + PartialEq {
    (
        o.lines.clone(),
        o.offloaded,
        o.used_index,
        o.pages_scanned,
        o.bytes_filtered,
        o.lines_scanned,
        o.ledger,
        o.modeled_time,
        o.degraded.clone(),
    )
}

/// The data page ids of the deterministic test corpus, learned from a
/// clean build so fault plans can target specific data pages.
fn data_page_ids() -> Vec<u64> {
    let system = faulted_system(FaultPlan::seeded(0), 0);
    system.data_pages().iter().map(|p| p.0).collect()
}

#[test]
fn cached_outcomes_are_byte_identical_under_every_fault_mode() {
    let p = data_page_ids();
    assert!(p.len() > 10, "corpus must span enough data pages");
    type PlanFactory = Box<dyn Fn() -> FaultPlan>;
    let plans: Vec<(&str, PlanFactory)> = vec![
        ("clean", Box::new(|| FaultPlan::seeded(17))),
        (
            "bit-rot",
            Box::new({
                let p1 = p[1];
                move || FaultPlan::seeded(17).with_scheduled(p1, FaultKind::BitRot { bit: 5 })
            }),
        ),
        (
            "transient-recoverable",
            Box::new({
                let p3 = p[3];
                move || {
                    FaultPlan::seeded(17)
                        .with_scheduled(p3, FaultKind::TransientRead { failures: 2 })
                }
            }),
        ),
        (
            "transient-exhausting",
            Box::new({
                let p5 = p[5];
                move || {
                    FaultPlan::seeded(17)
                        .with_scheduled(p5, FaultKind::TransientRead { failures: 50 })
                }
            }),
        ),
        (
            "torn-write",
            Box::new({
                let p8 = p[8];
                move || {
                    FaultPlan::seeded(17)
                        .with_scheduled(p8, FaultKind::TornWrite { valid_bytes: 100 })
                }
            }),
        ),
    ];
    // Repeated and varied queries: the second round runs against a warm
    // cache on the cached system and must change nothing observable.
    let queries = ["FATAL OR error", "NOT KERNEL", "FATAL OR error", "INFO"];

    for (mode, plan) in &plans {
        let mut cached = faulted_system(plan(), SystemConfig::DEFAULT_PAGE_CACHE_BYTES);
        let mut uncached = faulted_system(plan(), 0);
        for (round, q) in queries.iter().enumerate() {
            let a = cached.query_str(q).unwrap();
            let b = uncached.query_str(q).unwrap();
            assert_eq!(
                observed(&a),
                observed(&b),
                "{mode}: round {round} query {q:?} must not depend on the cache"
            );
        }
        let ledger = cached.device().ledger();
        assert!(
            ledger.cache_hits > 0,
            "{mode}: repeated queries must actually hit the cache"
        );
        assert_eq!(
            uncached.device().ledger().cache_hits,
            0,
            "{mode}: a disabled cache records no hits"
        );
        // The physical saving reconciles: what the cached system demanded
        // equals what it read plus what the cache served.
        assert_eq!(
            ledger.pages_read + ledger.cache_hits + ledger.shared_reads,
            uncached.device().ledger().demanded_reads(),
            "{mode}: demand must reconcile across cache on/off"
        );
    }
}

#[test]
fn ingest_keeps_the_cache_warm_and_new_lines_are_observed() {
    let needle = "zz-staleness-needle-zz appeared after the first ingest\n";
    let mut system = MithriLog::new(config(SystemConfig::DEFAULT_PAGE_CACHE_BYTES));
    system.ingest(corpus().text()).unwrap();

    // Warm the cache over the whole corpus.
    let before = system.query_str("NOT zz-absent-token-zz").unwrap();
    let warm = system.query_str("NOT zz-absent-token-zz").unwrap();
    assert_eq!(observed(&before), observed(&warm));
    assert!(
        system.device().ledger().cache_hits > 0,
        "the repeated full scan must be served from the cache"
    );

    // Ingest is append-only: existing pages are immutable, so their cached
    // text stays live — and the freshly appended line is still observed
    // because the new page has never been cached.
    system.ingest(needle.as_bytes()).unwrap();
    let hits_before = system.device().ledger().cache_hits;
    let after = system.query_str("NOT zz-absent-token-zz").unwrap();
    assert!(
        system.device().ledger().cache_hits > hits_before,
        "the post-ingest scan keeps consuming pre-ingest cache entries"
    );
    assert_eq!(
        after.lines.len(),
        before.lines.len() + 1,
        "the post-ingest scan must observe the new line"
    );
    assert!(after
        .lines
        .iter()
        .any(|l| l.contains("zz-staleness-needle")));

    // Cached and uncached systems still agree after the ingest.
    let again = system.query_str("NOT zz-absent-token-zz").unwrap();
    assert_eq!(observed(&again), observed(&after));
}

#[test]
fn mutable_device_access_retires_every_cached_generation() {
    let mut system = MithriLog::new(config(SystemConfig::DEFAULT_PAGE_CACHE_BYTES));
    system.ingest(corpus().text()).unwrap();
    let _ = system.query_str("NOT zz-absent-token-zz").unwrap();
    let _ = system.query_str("NOT zz-absent-token-zz").unwrap();
    assert!(system.device().ledger().cache_hits > 0);

    // A corruption drill takes mutable device access: every segment's
    // generation is retired, so no pre-drill text can mask the overwrite.
    let hits_before = {
        let ssd = system.device_mut();
        ssd.ledger().cache_hits
    };
    let refetched = system.query_str("NOT zz-absent-token-zz").unwrap();
    assert_eq!(
        system.device().ledger().cache_hits,
        hits_before,
        "a post-drill scan must not consume pre-drill cache entries"
    );
    assert!(!refetched.lines.is_empty());
}
