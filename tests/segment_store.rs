//! Segment crash matrix: power loss across seal and retention-drop
//! boundaries.
//!
//! The base crash matrix (`crash_matrix.rs`) proves the whole-batch
//! commit frontier. This matrix extends the drill to the segmented
//! store's two new durable transitions:
//!
//! * **seals** — a sealed segment, once its commit is acknowledged, is
//!   never lost: recovery rebuilds it with the same id, page set, line
//!   count, and CRC summary;
//! * **retention drops** — a dropped segment, once the retention pass is
//!   acknowledged, is never resurrected: recovery refuses to bring its
//!   lines or its id back;
//! * **atomicity** — the recovered store is always exactly the state at
//!   one step boundary (an ingest or a retention pass), never between
//!   two: the in-flight step may survive in full without its
//!   acknowledgement (the crash ate the `Ok` after barrier 2), but never
//!   partially.
//!
//! The workload seals aggressively (`segment_pages = 2`) and interleaves
//! retention passes with ingest batches, so the matrix covers crash
//! points inside seal-record chains and drop commits, not just plain
//! data commits.

use mithrilog::{MithriLog, MithriLogError, SegmentSummary, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_storage::{CrashPlan, CrashStore, MemStore, PageStore, StorageError};

/// Shred seed for sync-point crashes (how the volatile cache tears).
const SHRED_SEED: u64 = 0xBEEF;

/// Retention target for the interleaved passes.
const KEEP: u64 = 3;

/// Ingest batches per run.
const BATCHES: usize = 6;

fn corpus() -> Vec<u8> {
    generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 60_000,
        seed: 23,
    })
    .into_text()
}

/// Aggressive sealing so the matrix crosses many seal boundaries.
fn config() -> SystemConfig {
    SystemConfig {
        segment_pages: 2,
        ..SystemConfig::for_tests()
    }
}

/// One step of the workload: an ingest batch or a retention pass.
#[derive(Clone, Copy, Debug)]
enum Step {
    Ingest(usize),
    Retain,
}

/// The deterministic step sequence: a retention pass follows every third
/// ingest batch, so drops land between (and their commits crash between)
/// ordinary data commits.
fn steps() -> Vec<Step> {
    let mut out = Vec::new();
    for i in 0..BATCHES {
        out.push(Step::Ingest(i));
        if i % 3 == 2 {
            out.push(Step::Retain);
        }
    }
    out
}

/// Splits the corpus into `BATCHES` chunks on line boundaries.
fn batches(text: &[u8]) -> Vec<&[u8]> {
    let target = text.len().div_ceil(BATCHES);
    let mut out = Vec::new();
    let mut start = 0;
    while start < text.len() {
        let mut end = (start + target).min(text.len());
        while end < text.len() && text[end] != b'\n' {
            end += 1;
        }
        if end < text.len() {
            end += 1;
        }
        out.push(&text[start..end]);
        start = end;
    }
    out
}

fn is_crash(e: &MithriLogError) -> bool {
    matches!(e, MithriLogError::Storage(StorageError::Crashed { .. }))
}

/// The durable observable state of the store at a step boundary: total
/// retained lines plus every sealed segment's full summary (id, page
/// count, line count, byte totals, CRC).
#[derive(Debug, Clone, PartialEq)]
struct StoreState {
    lines: u64,
    segments: Vec<SegmentSummary>,
}

fn state_of<S: PageStore>(system: &MithriLog<S>) -> StoreState {
    StoreState {
        lines: system.lines(),
        segments: system.sealed_segments(),
    }
}

/// Applies one step; `Ok(())` means the step was acknowledged.
fn apply_step<S: PageStore>(
    system: &mut MithriLog<S>,
    step: Step,
    batches: &[&[u8]],
) -> Result<(), MithriLogError> {
    match step {
        Step::Ingest(i) => system.ingest(batches[i]).map(|_| ()),
        Step::Retain => system.apply_retention(KEEP).map(|_| ()),
    }
}

/// Baseline with the power held up: the op count to size the matrix, and
/// the store state after every step — the only states a recovered store
/// may legally surface.
fn baseline(text: &[u8]) -> (u64, Vec<StoreState>) {
    let config = config();
    let store = CrashStore::new(MemStore::new(config.device.page_bytes), CrashPlan::never());
    let mut system = MithriLog::with_store(store, config).unwrap();
    let batches = batches(text);
    let mut states = vec![state_of(&system)];
    for step in steps() {
        apply_step(&mut system, step, &batches).unwrap();
        states.push(state_of(&system));
    }
    let peak = states
        .iter()
        .map(|s| s.segments.len() as u64)
        .max()
        .unwrap();
    assert!(
        peak > KEEP,
        "workload must out-seal the retention target (peak {peak})"
    );
    assert!(
        states.iter().any(|s| !s.segments.is_empty())
            && states
                .windows(2)
                .any(|w| w[1].segments.len() < w[0].segments.len()),
        "workload must cover both seals and drops"
    );
    (system.device().store().ops(), states)
}

/// Runs the workload against a crash-planned store until the power dies,
/// returning how many steps were acknowledged and the surviving bytes.
fn run_until_crash(text: &[u8], plan: CrashPlan) -> (usize, MemStore) {
    let config = config();
    let (store, handle) = CrashStore::with_handle(MemStore::new(config.device.page_bytes), plan);
    let batches = batches(text);
    let mut acked = 0usize;
    let mut crashed = false;
    match MithriLog::with_store(store, config) {
        Ok(mut system) => {
            for step in steps() {
                match apply_step(&mut system, step, &batches) {
                    Ok(()) => acked += 1,
                    Err(e) if is_crash(&e) => {
                        crashed = true;
                        break;
                    }
                    Err(e) => panic!("only the planned crash may fail a step: {e}"),
                }
            }
        }
        Err(e) if is_crash(&e) => crashed = true,
        Err(e) => panic!("only the planned crash may fail formatting: {e}"),
    }
    assert!(crashed, "plan {plan:?} must fire within the workload");
    (acked, handle.snapshot())
}

#[test]
fn segment_crash_matrix_never_loses_a_sealed_segment_nor_resurrects_a_dropped_one() {
    let text = corpus();
    let config = config();
    let (total_ops, states) = baseline(&text);
    assert!(total_ops > 40, "workload too small for a meaningful matrix");

    for op in 1..=total_ops {
        let plan = CrashPlan::crash_at(op).with_seed(SHRED_SEED);
        let (acked, durable) = run_until_crash(&text, plan);
        let Ok((mut system, report)) = MithriLog::open_store(durable, config.clone()) else {
            assert_eq!(
                acked, 0,
                "crash at op {op}: mount failed after steps were acked"
            );
            continue;
        };

        // Atomicity: the recovered store sits exactly at the acked step
        // boundary, or one whole step past it (durable but unacked).
        let recovered = state_of(&system);
        let at_acked = recovered == states[acked];
        let at_next = acked + 1 < states.len() && recovered == states[acked + 1];
        assert!(
            at_acked || at_next,
            "crash at op {op}: recovered state after {acked} acked steps is \
             neither boundary:\n  recovered: {recovered:?}\n  acked: {:?}\n  \
             next: {:?}\n  ({report})",
            states[acked],
            states.get(acked + 1),
        );
        assert_eq!(
            report.segments_recovered,
            recovered.segments.len() as u64,
            "crash at op {op}: report disagrees with the mounted store"
        );

        // Sealed segments survived exactly: ids, page counts, line
        // counts, and CRC summaries all match the pre-crash seal. Dropped
        // segments stayed dropped: the final boundary at or before the
        // recovered one determines which ids may exist.
        let legal = if at_acked {
            &states[acked]
        } else {
            &states[acked + 1]
        };
        assert_eq!(recovered.segments, legal.segments);

        // The recovered store still serves exact queries over what it
        // retained, and keeps ingesting.
        let dump = system.query_str("NOT zz-no-such-token-zz").unwrap();
        assert!(!dump.degraded.is_lossy(), "crash at op {op}: lossy dump");
        assert_eq!(
            dump.match_count(),
            recovered.lines,
            "crash at op {op}: dump disagrees with recovered line total"
        );
        system
            .ingest(b"post-recovery probe line\n")
            .unwrap_or_else(|e| panic!("crash at op {op}: recovered store cannot ingest: {e}"));
    }
}

#[test]
fn segment_recovery_is_deterministic_per_seed() {
    let text = corpus();
    let config = config();
    let (total_ops, _) = baseline(&text);
    for op in (1..=total_ops).step_by(11).chain([total_ops]) {
        let plan = CrashPlan::crash_at(op).with_seed(SHRED_SEED);
        let (acked_a, durable_a) = run_until_crash(&text, plan);
        let (acked_b, durable_b) = run_until_crash(&text, plan);
        assert_eq!(acked_a, acked_b, "op {op}: acks diverged");
        let a = MithriLog::open_store(durable_a, config.clone()).ok();
        let b = MithriLog::open_store(durable_b, config.clone()).ok();
        match (a, b) {
            (Some((sys_a, rep_a)), Some((sys_b, rep_b))) => {
                assert_eq!(rep_a, rep_b, "op {op}: recovery report diverged");
                assert_eq!(
                    state_of(&sys_a),
                    state_of(&sys_b),
                    "op {op}: recovered state diverged"
                );
            }
            (None, None) => {}
            _ => panic!("op {op}: one replay mounted, the other refused"),
        }
    }
}
