//! Chaos soak: the concurrent service under a submit/cancel/ingest storm
//! while the device injects each fault mode in turn — bit rot, torn
//! writes, transient read episodes, and read panics — with deadlines and
//! the online scrub lane enabled.
//!
//! Three invariants, per DESIGN.md "Fault domains":
//!
//! 1. **No wedge** — every admitted job settles within a bound; a
//!    scheduler that died or deadlocked shows up as a `WAIT` timeout.
//! 2. **No panic escape** — a poisoned wave fails only its own jobs; the
//!    service keeps answering submissions and `STATS` afterwards, and
//!    shuts down cleanly.
//! 3. **Determinism through chaos** — any query outcome that is not lossy
//!    (no pages skipped or clipped) returns byte-identical lines to a solo
//!    run on a clean replica: faults either surface honestly in the
//!    degraded report or change nothing at all.
//!
//! The default run is a bounded smoke (a few hundred jobs per mode) so CI
//! stays fast; the bench-side `service_load --storm` scales the same shape
//! up under load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, Dataset, DatasetProfile, DatasetSpec};
use mithrilog_service::{JobOutput, Priority, Service, ServiceConfig, ServiceStats, WaitError};
use mithrilog_storage::{FaultKind, FaultPlan, FaultyStore, MemStore};

/// Positive-only queries: lines ingested mid-soak (which match none of
/// these tokens) cannot perturb the match sets, so non-lossy outcomes stay
/// comparable to the pre-soak baseline.
const QUERIES: [&str; 4] = [
    "FATAL",
    "error OR failed",
    "error AND KERNEL",
    "failed OR FATAL",
];

/// A line that matches no soak query — ingest churn without output churn.
const QUIET_LINE: &[u8] = b"1117838570 2005.06.03 soak quiet heartbeat line\n";

fn corpus() -> Dataset {
    generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 150_000,
        seed: 7,
    })
}

fn baseline_lines(text: &[u8]) -> Vec<Vec<String>> {
    let mut clean = MithriLog::new(SystemConfig::default());
    clean.ingest(text).unwrap();
    QUERIES
        .iter()
        .map(|q| clean.query_str(q).unwrap().lines)
        .collect()
}

/// Data pages of a clean probe ingest (identical layout to faulted runs).
fn probe_data_pages(text: &[u8]) -> Vec<u64> {
    let mut probe = MithriLog::new(SystemConfig::default());
    probe.ingest(text).unwrap();
    probe.data_pages().iter().map(|p| p.0).collect()
}

/// Asserts every cumulative `STATS` counter is non-decreasing between two
/// samples taken mid-storm (`queued` is a gauge and legitimately falls).
fn assert_stats_monotonic(mode: &str, prev: &ServiceStats, next: &ServiceStats) {
    let cumulative = |s: &ServiceStats| {
        [
            ("submitted", s.submitted),
            ("rejected", s.rejected),
            ("completed", s.completed),
            ("failed", s.failed),
            ("cancelled", s.cancelled),
            ("waves", s.waves),
            ("demanded_page_reads", s.demanded_page_reads),
            ("unique_pages_read", s.unique_pages_read),
            ("shared_reads_avoided", s.shared_reads_avoided),
            ("cache_hits", s.cache_hits),
            ("cache_bytes_saved", s.cache_bytes_saved),
            ("waves_poisoned", s.waves_poisoned),
            ("scrub_slices", s.scrub_slices),
            ("pages_scrubbed", s.pages_scrubbed),
            ("pages_quarantined", s.pages_quarantined),
            ("ingests_overlapped", s.ingests_overlapped),
            ("segments_sealed", s.segments_sealed),
            ("segments_dropped", s.segments_dropped),
        ]
    };
    for ((name, before), (_, after)) in cumulative(prev).into_iter().zip(cumulative(next)) {
        assert!(
            after >= before,
            "{mode}: counter {name} went backwards mid-storm ({before} -> {after})"
        );
    }
}

/// One soak round: a fault schedule, a storm, and the three invariants.
fn soak(mode: &str, schedule: &[(u64, FaultKind)], failures_allowed: bool) {
    let ds = corpus();
    let baseline = baseline_lines(ds.text());

    let config = SystemConfig::default();
    let mut plan = FaultPlan::seeded(99);
    for &(page, kind) in schedule {
        plan = plan.with_scheduled(page, kind);
    }
    let store = FaultyStore::new(MemStore::new(config.device.page_bytes), plan);
    let mut system = MithriLog::with_store(store, config).unwrap();
    system.ingest(ds.text()).unwrap();

    let service = Service::spawn(
        system,
        ServiceConfig {
            max_queue: 512,
            max_batch: 4,
            scrub_batch: 16,
            ..ServiceConfig::default()
        },
    );
    let handle = Arc::new(service.handle());

    // The storm: 3 submitter threads × 24 jobs, every 4th cancelled
    // immediately, every 6th under a tight deadline, with ingest churn
    // interleaved. Ids are collected with their query index for the
    // byte-identity check. A monitor thread samples `STATS` throughout:
    // every cumulative counter must be monotonic under concurrency — a
    // decrease means a lost update or a torn read under the storm.
    let storm_over = AtomicBool::new(false);
    let submitted: Vec<Vec<(u64, Option<usize>)>> = std::thread::scope(|scope| {
        let monitor = {
            let handle = Arc::clone(&handle);
            let storm_over = &storm_over;
            scope.spawn(move || {
                let mut prev = ServiceStats::default();
                let mut samples = 0u64;
                loop {
                    let done = storm_over.load(Ordering::Acquire);
                    let stats = handle.stats();
                    assert_stats_monotonic(mode, &prev, &stats);
                    prev = stats;
                    samples += 1;
                    if done {
                        return samples;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let workers: Vec<_> = (0..3)
            .map(|c| {
                let handle = Arc::clone(&handle);
                scope.spawn(move || {
                    let mut ids = Vec::new();
                    for i in 0..24 {
                        if i % 8 == 5 {
                            if let Ok(id) = handle.ingest(QUIET_LINE.to_vec()) {
                                ids.push((id, None));
                            }
                            continue;
                        }
                        let qi = (c + i) % QUERIES.len();
                        let pri = [Priority::High, Priority::Normal, Priority::Low][i % 3];
                        let mut request = mithrilog::QueryRequest::parse(QUERIES[qi]).unwrap();
                        if i % 6 == 2 {
                            request = request.with_deadline(Duration::from_micros(300));
                        }
                        let Ok(id) = handle.submit(request, pri) else {
                            continue; // admission rejection is a legal outcome
                        };
                        if i % 4 == 1 {
                            handle.cancel(id);
                        }
                        ids.push((id, Some(qi)));
                    }
                    ids
                })
            })
            .collect();
        let submitted = workers.into_iter().map(|w| w.join().unwrap()).collect();
        storm_over.store(true, Ordering::Release);
        let samples = monitor.join().unwrap();
        assert!(samples > 1, "{mode}: the stats monitor never sampled");
        submitted
    });

    // Invariant 1: every job settles within a bound. Invariant 3: settled
    // non-lossy query outcomes are byte-identical to the clean baseline.
    let mut settled = 0u64;
    for (id, qi) in submitted.into_iter().flatten() {
        match handle.wait_timeout(id, Duration::from_secs(120)) {
            Ok(JobOutput::Query { outcome, .. }) => {
                settled += 1;
                if let Some(qi) = qi {
                    if !outcome.degraded.is_lossy() {
                        assert_eq!(
                            outcome.lines, baseline[qi],
                            "{mode}: non-lossy outcome for {:?} diverged from solo",
                            QUERIES[qi]
                        );
                    }
                }
            }
            Ok(_) => settled += 1,
            Err(WaitError::Cancelled) => settled += 1,
            Err(WaitError::Failed(reason)) => {
                settled += 1;
                assert!(
                    failures_allowed && reason.contains("internal error"),
                    "{mode}: unexpected hard failure: {reason}"
                );
            }
            Err(e) => panic!("{mode}: job {id} wedged the service: {e}"),
        }
    }
    assert!(settled > 0, "{mode}: nothing ran");

    // Invariant 2: the service still answers after the storm — a fresh
    // submission completes and the stats are coherent. In the read-panic
    // mode the poisonous page sits at the device's tail, so a
    // budget-clipped plan steers clear of it and must complete.
    let mut request = mithrilog::QueryRequest::parse(QUERIES[0]).unwrap();
    if failures_allowed {
        request.page_budget = Some(2);
    }
    let id = handle.submit(request, Priority::High).unwrap();
    match handle.wait_timeout(id, Duration::from_secs(120)) {
        Ok(JobOutput::Query { .. }) => {}
        other => panic!("{mode}: post-storm submission did not complete: {other:?}"),
    }
    let stats = handle.stats();
    assert_eq!(stats.queued, 0, "{mode}: {stats:?}");
    assert!(stats.waves > 0, "{mode}: {stats:?}");
    if !failures_allowed {
        assert_eq!(stats.failed, 0, "{mode}: {stats:?}");
        assert_eq!(stats.waves_poisoned, 0, "{mode}: {stats:?}");
    }
    service.shutdown();
}

#[test]
fn soak_bit_rot() {
    let pages = probe_data_pages(corpus().text());
    let schedule: Vec<_> = pages
        .iter()
        .step_by(7)
        .map(|&p| (p, FaultKind::BitRot { bit: 9 }))
        .collect();
    soak("bit-rot", &schedule, false);
}

#[test]
fn soak_torn_writes() {
    let pages = probe_data_pages(corpus().text());
    let schedule: Vec<_> = pages
        .iter()
        .step_by(9)
        .map(|&p| (p, FaultKind::TornWrite { valid_bytes: 100 }))
        .collect();
    soak("torn-write", &schedule, false);
}

#[test]
fn soak_transient_reads() {
    let pages = probe_data_pages(corpus().text());
    let mut schedule: Vec<_> = pages
        .iter()
        .step_by(5)
        .map(|&p| (p, FaultKind::TransientRead { failures: 1 }))
        .collect();
    // One page that never recovers: retries exhaust, the scrub lane
    // quarantines it mid-soak, later queries skip it at zero cost.
    schedule.push((
        pages[pages.len() / 2],
        FaultKind::TransientRead { failures: u32::MAX },
    ));
    soak("transient-read", &schedule, false);
}

#[test]
fn soak_read_panics() {
    let pages = probe_data_pages(corpus().text());
    // The poisonous page panics every read: waves touching it fail with an
    // internal error; everything else keeps working around it.
    let schedule = [(pages[pages.len() - 1], FaultKind::ReadPanic)];
    soak("read-panic", &schedule, true);
}
