//! Crash-matrix acceptance harness for the journaled commit protocol.
//!
//! A [`CrashStore`] kills the power at operation `k`; the matrix runs the
//! same batched ingest for *every* `k` from 1 to the workload's total
//! operation count and remounts whatever survived. The recovery contract
//! under test:
//!
//! * **no acknowledged line lost** — every line whose ingest batch
//!   returned `Ok` before the crash is present after recovery;
//! * **no partial line visible** — the recovered corpus is an exact
//!   whole-batch prefix of the input, never a torn batch. The in-flight
//!   batch may legitimately survive *in full* without its `Ok` (the crash
//!   ate the acknowledgement after barrier 2 landed, the classic
//!   durable-but-unacked outcome), but never partially;
//! * **deterministic** — the same crash point and shred seed produce the
//!   same [`RecoveryReport`], byte for byte.

use mithrilog::{MithriLog, MithriLogError, RecoveryReport, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_storage::{CrashPlan, CrashStore, MemStore, StorageError};

/// Ingest batches per run: each batch is one commit, so the matrix covers
/// crash points inside and between several complete commit cycles.
const BATCHES: usize = 8;

/// Shred seed for sync-point crashes (how the volatile cache tears).
const SHRED_SEED: u64 = 0xC0FFEE;

fn corpus() -> Vec<u8> {
    let text = generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 120_000,
        seed: 11,
    })
    .into_text();
    assert!(text.len() >= 100_000, "matrix corpus must be >= 100 KB");
    text
}

/// Splits the corpus into `BATCHES` chunks on line boundaries, so batch
/// acknowledgement is a whole-line guarantee.
fn batches(text: &[u8]) -> Vec<&[u8]> {
    let target = text.len().div_ceil(BATCHES);
    let mut out = Vec::new();
    let mut start = 0;
    while start < text.len() {
        let mut end = (start + target).min(text.len());
        while end < text.len() && text[end] != b'\n' {
            end += 1;
        }
        if end < text.len() {
            end += 1; // keep the newline with its line
        }
        out.push(&text[start..end]);
        start = end;
    }
    out
}

fn is_crash(e: &MithriLogError) -> bool {
    matches!(e, MithriLogError::Storage(StorageError::Crashed { .. }))
}

/// Outcome of one ingest run that died at a planned crash point.
struct CrashRun {
    /// Lines acknowledged (their ingest batch returned `Ok`) pre-crash.
    acked_lines: u64,
    /// The durable store frozen at the bytes that survived the power loss.
    durable: MemStore,
}

/// Runs the batched ingest against a crash-planned store until the power
/// dies, returning the acknowledged line count and the surviving bytes.
fn run_until_crash(config: &SystemConfig, text: &[u8], plan: CrashPlan) -> CrashRun {
    let store = MemStore::new(config.device.page_bytes);
    let (store, handle) = CrashStore::with_handle(store, plan);
    let mut acked_lines = 0u64;
    let mut crashed = false;
    match MithriLog::with_store(store, config.clone()) {
        Ok(mut system) => {
            for batch in batches(text) {
                match system.ingest(batch) {
                    Ok(report) => acked_lines += report.lines,
                    Err(e) if is_crash(&e) => {
                        crashed = true;
                        break;
                    }
                    Err(e) => panic!("only the planned crash may fail ingest: {e}"),
                }
            }
        }
        Err(e) if is_crash(&e) => crashed = true,
        Err(e) => panic!("only the planned crash may fail formatting: {e}"),
    }
    assert!(crashed, "plan {plan:?} must fire within the workload");
    CrashRun {
        acked_lines,
        durable: handle.snapshot(),
    }
}

/// Remounts the surviving bytes; `None` means recovery refused the store.
fn recover(config: &SystemConfig, run: &CrashRun) -> Option<(MithriLog<MemStore>, RecoveryReport)> {
    MithriLog::open_store(run.durable.clone(), config.clone()).ok()
}

#[test]
fn crash_matrix_loses_no_acked_line_and_shows_no_partial_line() {
    let text = corpus();
    let config = SystemConfig::for_tests();
    let all_lines: Vec<&[u8]> = text
        .split(|b| *b == b'\n')
        .filter(|l| !l.is_empty())
        .collect();
    // Cumulative line counts at each batch boundary: the only states a
    // recovered store may legally surface.
    let boundaries: Vec<u64> = batches(&text)
        .iter()
        .scan(0u64, |acc, b| {
            *acc += b.split(|x| *x == b'\n').filter(|l| !l.is_empty()).count() as u64;
            Some(*acc)
        })
        .collect();

    // Baseline: the same workload with the power held up, to size the
    // matrix. Every later plan crashes strictly inside this op count.
    let store = MemStore::new(config.device.page_bytes);
    let mut baseline =
        MithriLog::with_store(CrashStore::new(store, CrashPlan::never()), config.clone()).unwrap();
    for batch in batches(&text) {
        baseline.ingest(batch).unwrap();
    }
    assert_eq!(baseline.lines(), all_lines.len() as u64);
    let total_ops = baseline.device().store().ops();
    assert!(total_ops > 40, "workload too small for a meaningful matrix");
    drop(baseline);

    for op in 1..=total_ops {
        let plan = CrashPlan::crash_at(op).with_seed(SHRED_SEED);
        let run = run_until_crash(&config, &text, plan);
        let Some((mut system, report)) = recover(&config, &run) else {
            // The store may be unmountable only if the crash predates the
            // initial format's completion — before anything was acked.
            assert_eq!(
                run.acked_lines, 0,
                "crash at op {op}: mount failed after lines were acked"
            );
            continue;
        };

        // No acknowledged line lost, and nothing but whole batches
        // recovered: the line count must sit on a batch boundary at or one
        // batch past the acked prefix (the one past = the crash ate the
        // acknowledgement after the commit already landed).
        let recovered = system.lines();
        let next_boundary = boundaries
            .iter()
            .copied()
            .find(|&b| b > run.acked_lines)
            .unwrap_or(run.acked_lines);
        assert!(
            recovered == run.acked_lines || recovered == next_boundary,
            "crash at op {op}: recovered {recovered} lines, acked \
             {acked}, next batch boundary {next_boundary} ({report})",
            acked = run.acked_lines,
        );
        assert_eq!(report.lines_recovered, recovered);

        // No partial line visible: the recovered corpus is exactly the
        // first `recovered` ingested lines, in order. (A full dump via a
        // token no line contains: NOT matches everything.)
        let dump = system.query_str("NOT zz-no-such-token-zz").unwrap();
        assert!(!dump.degraded.is_lossy(), "crash at op {op}: lossy dump");
        assert_eq!(dump.match_count(), recovered, "crash at op {op}");
        for (i, line) in dump.lines.iter().enumerate() {
            assert_eq!(
                line.as_bytes(),
                all_lines[i],
                "crash at op {op}: line {i} is not the ingested line"
            );
        }

        // The recovered system keeps working: ingest the rest and the
        // corpus completes as if the crash never happened.
        let mut remaining = recovered as usize;
        for batch in batches(&text) {
            let lines = batch
                .split(|b| *b == b'\n')
                .filter(|l| !l.is_empty())
                .count();
            if remaining >= lines {
                remaining -= lines;
                continue;
            }
            assert_eq!(remaining, 0, "acks are whole batches");
            system.ingest(batch).unwrap();
        }
        assert_eq!(
            system.lines(),
            all_lines.len() as u64,
            "crash at op {op}: resumed ingest must complete the corpus"
        );
    }
}

#[test]
fn crash_recovery_report_is_deterministic_per_seed() {
    let text = corpus();
    let config = SystemConfig::for_tests();

    let store = MemStore::new(config.device.page_bytes);
    let mut baseline =
        MithriLog::with_store(CrashStore::new(store, CrashPlan::never()), config.clone()).unwrap();
    for batch in batches(&text) {
        baseline.ingest(batch).unwrap();
    }
    let total_ops = baseline.device().store().ops();
    drop(baseline);

    // Sample the matrix (endpoints plus a stride) and replay each crash
    // point twice: identical acks, identical surviving bytes, identical
    // recovery report.
    let sampled: Vec<u64> = (1..=total_ops).step_by(7).chain([total_ops]).collect();
    for op in sampled {
        let plan = CrashPlan::crash_at(op).with_seed(SHRED_SEED);
        let a = run_until_crash(&config, &text, plan);
        let b = run_until_crash(&config, &text, plan);
        assert_eq!(a.acked_lines, b.acked_lines, "op {op}: acks diverged");
        let ra = recover(&config, &a).map(|(_, r)| r);
        let rb = recover(&config, &b).map(|(_, r)| r);
        assert_eq!(ra, rb, "op {op}: recovery report diverged");
    }

    // A different shred seed may leave different torn bytes, but recovery
    // still lands on a committed frontier with the same acked lines.
    let plan = CrashPlan::crash_at(total_ops).with_seed(SHRED_SEED ^ 0x5A5A);
    let run = run_until_crash(&config, &text, plan);
    let (system, _) = recover(&config, &run).expect("late crash leaves a mountable store");
    assert_eq!(system.lines(), run.acked_lines);
}
