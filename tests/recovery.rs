//! Recovery and correlation integration tests: index rebuild after a
//! simulated host restart, a real on-disk unmount/remount round trip, and
//! the §8 join workflow over two filtered event classes.

use mithrilog::{IndexRecovery, MithriLog, SystemConfig};
use mithrilog_analytics::{correlate_counts, extract_node, join_on};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

fn corpus() -> Vec<u8> {
    generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: 250_000,
        seed: 404,
    })
    .into_text()
}

#[test]
fn rebuild_restores_identical_query_results() {
    let text = corpus();
    let mut system = MithriLog::new(SystemConfig::for_tests());
    system.ingest(&text).unwrap();

    let queries = [
        "session AND opened",
        "Failed AND NOT root",
        "pbs_mom: OR ntpd[00373]:",
        "NOT kernel:",
    ];
    let before: Vec<u64> = queries
        .iter()
        .map(|q| system.query_str(q).unwrap().match_count())
        .collect();
    let lines_before = system.lines();
    let raw_before = system.raw_bytes();

    // Simulated host restart: all in-memory index state is discarded and
    // rebuilt from the surviving data pages.
    system.rebuild_index().unwrap();

    assert_eq!(system.lines(), lines_before);
    assert_eq!(system.raw_bytes(), raw_before);
    let after: Vec<u64> = queries
        .iter()
        .map(|q| system.query_str(q).unwrap().match_count())
        .collect();
    assert_eq!(before, after, "results must survive an index rebuild");

    // Now the real thing: the same corpus through an on-disk store, the
    // process "restarting" (store dropped), and a recovery-on-mount reopen.
    let dir = std::env::temp_dir().join("mithrilog-recovery-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("reopen-{}.mlog", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut disk = MithriLog::create(&path, SystemConfig::for_tests()).unwrap();
        disk.ingest(&text).unwrap();
    }
    // A formatted store must never be silently reformatted.
    assert!(MithriLog::create(&path, SystemConfig::for_tests()).is_err());

    let (mut reopened, report) = MithriLog::open(&path, SystemConfig::for_tests()).unwrap();
    assert_eq!(report.index, IndexRecovery::Checkpoint, "{report}");
    assert_eq!(report.uncommitted_pages_discarded, 0, "clean shutdown");
    assert_eq!(reopened.lines(), lines_before);
    assert_eq!(reopened.raw_bytes(), raw_before);
    let on_disk: Vec<u64> = queries
        .iter()
        .map(|q| reopened.query_str(q).unwrap().match_count())
        .collect();
    assert_eq!(before, on_disk, "results must survive unmount + remount");
    drop(reopened);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn rebuild_recomputes_compression_ratio_and_throughput_model() {
    let text = corpus();
    let mut system = MithriLog::new(SystemConfig::for_tests());
    system.ingest(&text).unwrap();
    let ratio_before = system.compression_ratio();
    let tput_before = system.modeled_throughput().total_gbps;

    system.rebuild_index().unwrap();
    assert!((system.compression_ratio() - ratio_before).abs() < 0.01);
    assert!((system.modeled_throughput().total_gbps - tput_before).abs() < 0.2);
}

#[test]
fn join_correlates_event_classes_by_node() {
    let text = corpus();
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(&text).unwrap();

    // Two event classes extracted with two accelerator queries...
    let opened = system.query_str("session AND opened").unwrap().lines;
    let closed = system.query_str("session AND closed").unwrap().lines;
    assert!(!opened.is_empty() && !closed.is_empty());

    // ...joined on the source node.
    let pairs = join_on(&opened, &closed, extract_node);
    assert!(!pairs.is_empty(), "hot nodes both open and close sessions");
    for p in pairs.iter().take(50) {
        assert_eq!(extract_node(p.left).as_deref(), Some(p.key.as_str()));
        assert_eq!(extract_node(p.right).as_deref(), Some(p.key.as_str()));
    }
    let ranked = correlate_counts(&pairs);
    assert!(ranked[0].1 >= ranked.last().unwrap().1);
    // Every ranked key belongs to a node that appears in both classes.
    let open_nodes: std::collections::HashSet<_> =
        opened.iter().filter_map(|l| extract_node(l)).collect();
    let close_nodes: std::collections::HashSet<_> =
        closed.iter().filter_map(|l| extract_node(l)).collect();
    for (k, _) in &ranked {
        assert!(open_nodes.contains(k) && close_nodes.contains(k));
    }
}
