//! Failure-injection tests: corrupted pages, truncated frames, and
//! malformed inputs must surface as typed errors or degraded (reported)
//! results, never as panics or silent wrong answers.

use mithrilog::{MithriLog, MithriLogError, SystemConfig};
use mithrilog_compress::{Codec, Gzf, Lz4, Lzah, Lzrw1, Snappy};
use mithrilog_storage::{DevicePerfModel, MemStore, PageId, SimSsd, StorageError};

const LOG: &str = "\
RAS KERNEL INFO instruction cache parity error corrected\n\
RAS KERNEL FATAL data storage interrupt\n\
pbs_mom: scan_for_exiting, job 4161 task 1 terminated\n";

#[test]
fn corrupted_data_page_degrades_instead_of_failing() {
    let mut system = MithriLog::new(SystemConfig::for_tests());
    system.ingest(LOG.repeat(50).as_bytes()).unwrap();
    // Smash the first data page with garbage *through the device*: the
    // checksum sidecar is updated, so detection falls to the decoder's own
    // consistency checks — and the query skips the page rather than dying.
    let page = system.data_pages()[0];
    let garbage = vec![0xA5u8; 64];
    system.device_mut().write(page, &garbage).unwrap();

    let o = system.query_str("FATAL").unwrap();
    assert_eq!(o.degraded.skipped_pages, vec![page.0]);
    assert!(o.degraded.is_lossy());
    assert!(o.degraded.estimated_missed_lines > 0);
    assert!(o.match_count() < 50, "the skipped page held matches");
}

#[test]
fn zeroed_data_page_is_skipped_too() {
    let mut system = MithriLog::new(SystemConfig::for_tests());
    system.ingest(LOG.repeat(50).as_bytes()).unwrap();
    let page = system.data_pages()[0];
    system.device_mut().write(page, &[]).unwrap(); // all-zero page
    let o = system.query_str("FATAL").unwrap();
    assert_eq!(o.degraded.skipped_pages, vec![page.0]);
}

#[test]
fn queries_not_touching_the_corrupt_page_are_unaffected() {
    // Needle in a late page; corrupt an early page; the indexed query must
    // avoid the damaged page entirely, and a full scan must skip exactly
    // the damaged page while staying correct everywhere else.
    let mut text = String::new();
    for i in 0..2000 {
        text.push_str(&format!("routine filler line number {i}\n"));
    }
    text.push_str("unique-needle-token appears once\n");
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(text.as_bytes()).unwrap();
    assert!(system.data_page_count() > 4);

    let first = system.data_pages()[0];
    system.device_mut().write(first, &[0xFF; 32]).unwrap();

    let o = system.query_str("unique-needle-token").unwrap();
    assert_eq!(o.match_count(), 1);
    assert!(o.used_index);
    assert!(
        !o.degraded.is_lossy(),
        "the index plan avoided the corrupt page, so nothing was skipped"
    );
    // A full scan hits the corruption, skips that one page, and reports it.
    let full = system.query_str("NOT unique-needle-token").unwrap();
    assert_eq!(full.degraded.skipped_pages, vec![first.0]);
    assert!(full.match_count() > 0, "surviving pages still match");
}

#[test]
fn hard_errors_still_propagate() {
    // Degradation covers data loss, not programming errors: reading past
    // the device extent stays a hard typed error.
    let mut system = MithriLog::new(SystemConfig::for_tests());
    system.ingest(LOG.as_bytes()).unwrap();
    let err = system.device_mut().read(PageId(10_000)).unwrap_err();
    assert!(matches!(err, StorageError::OutOfRange { .. }));
}

#[test]
fn out_of_range_page_read_is_typed() {
    let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::default());
    match ssd.read(PageId(99)) {
        Err(StorageError::OutOfRange {
            page: 99,
            extent: 0,
        }) => {}
        other => panic!("expected OutOfRange, got {other:?}"),
    }
}

#[test]
fn decoders_never_panic_on_garbage() {
    // Deterministic pseudo-random garbage across a spread of lengths,
    // including inputs that start with each codec's real magic.
    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(Lzah::default()),
        Box::new(Lzrw1::new()),
        Box::new(Lz4::new()),
        Box::new(Snappy::new()),
        Box::new(Gzf::new()),
    ];
    let mut x: u64 = 0xDEAD_BEEF;
    for len in [0usize, 1, 4, 13, 24, 100, 1000, 4096] {
        let garbage: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect();
        for c in &codecs {
            let _ = c.decompress(&garbage); // must return, not panic
                                            // Magic-prefixed garbage exercises deeper parse paths.
            let mut prefixed = c.compress(b"seed");
            prefixed.truncate(5);
            prefixed.extend_from_slice(&garbage);
            let _ = c.decompress(&prefixed);
        }
    }
}

#[test]
fn truncated_frames_fail_cleanly_at_every_cut_point() {
    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(Lzah::default()),
        Box::new(Lzrw1::new()),
        Box::new(Lz4::new()),
        Box::new(Snappy::new()),
        Box::new(Gzf::new()),
    ];
    // The invariant: a truncated frame either fails with a typed error, or
    // — when the cut only removed semantically-void trailing padding —
    // still decodes to *exactly* the original. An `Ok` with wrong bytes is
    // the one unacceptable outcome.
    let payload = LOG.repeat(20);
    for c in &codecs {
        let packed = c.compress(payload.as_bytes());
        for cut in (0..packed.len()).step_by(7) {
            if let Ok(out) = c.decompress(&packed[..cut]) {
                assert_eq!(
                    out,
                    payload.as_bytes(),
                    "{}: truncation at {cut} returned Ok with corrupt data",
                    c.name()
                );
            }
        }
    }
}

#[test]
fn parse_errors_propagate_through_the_system() {
    let mut system = MithriLog::new(SystemConfig::for_tests());
    system.ingest(LOG.as_bytes()).unwrap();
    let err = system.query_str("AND AND").unwrap_err();
    assert!(matches!(err, MithriLogError::Parse(_)));
    let err = system.query_str("").unwrap_err();
    assert!(matches!(err, MithriLogError::Parse(_)));
}
