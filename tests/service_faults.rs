//! Service fault domains: deadlines, mid-scan cancellation, panic
//! isolation, and quarantine — any query, connection, or page can fail
//! without collateral damage.
//!
//! The contract (DESIGN.md, "Fault domains"): a cancelled query stops at a
//! page boundary and charges nothing further; a deadline clips the plan
//! deterministically (modeled time, not wall-clock) so the same request
//! replays byte-identically on a replica; a panicking wave fails only its
//! own jobs while the scheduler keeps serving; quarantined pages are
//! skipped up front at zero cost, with zero retry charges on every repeat.

use std::sync::Arc;
use std::time::Duration;

use mithrilog::{CancelToken, MithriLog, QueryRequest, SystemConfig};
use mithrilog_loggen::{generate, Dataset, DatasetProfile, DatasetSpec};
use mithrilog_service::{JobOutput, JobStatus, Priority, Service, ServiceConfig, WaitError};
use mithrilog_storage::{FaultKind, FaultPlan, FaultyStore, MemStore};

fn corpus(target_bytes: usize) -> Dataset {
    generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes,
        seed: 7,
    })
}

fn clean_system(text: &[u8]) -> MithriLog {
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(text).unwrap();
    system
}

fn faulted_system(text: &[u8], schedule: &[(u64, FaultKind)]) -> MithriLog<FaultyStore<MemStore>> {
    let config = SystemConfig::default();
    let mut plan = FaultPlan::seeded(99);
    for &(page, kind) in schedule {
        plan = plan.with_scheduled(page, kind);
    }
    let store = FaultyStore::new(MemStore::new(config.device.page_bytes), plan);
    let mut system = MithriLog::with_store(store, config).unwrap();
    system.ingest(text).unwrap();
    system
}

/// Data pages of a clean probe ingest (identical layout to faulted runs).
fn probe_data_pages(text: &[u8]) -> Vec<u64> {
    let mut probe = MithriLog::new(SystemConfig::default());
    probe.ingest(text).unwrap();
    probe.data_pages().iter().map(|p| p.0).collect()
}

#[test]
fn cancel_then_wait_reports_cancelled() {
    let ds = corpus(60_000);
    let service = Service::spawn(clean_system(ds.text()), ServiceConfig::default());
    let handle = service.handle();

    // Stuff the lane with work so later submissions sit Pending long
    // enough to cancel deterministically.
    let blockers: Vec<_> = (0..4)
        .map(|_| handle.submit_str("NOT KERNEL", Priority::High).unwrap())
        .collect();
    let id = handle
        .submit_str("error OR failed OR FATAL", Priority::Low)
        .unwrap();
    assert!(handle.cancel(id), "a pending job is cancellable");
    assert!(matches!(
        handle.wait_timeout(id, Duration::from_secs(30)),
        Err(WaitError::Cancelled)
    ));
    for b in blockers {
        handle.wait_timeout(b, Duration::from_secs(30)).unwrap();
    }
    assert_eq!(handle.stats().cancelled, 1);
    service.shutdown();
}

#[test]
fn cancel_races_the_wave_claim_without_wedging() {
    let ds = corpus(300_000);
    let service = Service::spawn(
        clean_system(ds.text()),
        ServiceConfig {
            max_queue: 256,
            max_batch: 4,
            ..ServiceConfig::default()
        },
    );
    let handle = Arc::new(service.handle());

    // One thread floods submissions, another cancels every other id as
    // fast as it can — racing the scheduler's wave claim on purpose.
    let ids: Vec<_> = (0..48)
        .map(|_| {
            handle
                .submit_str("error OR failed OR FATAL", Priority::Normal)
                .unwrap()
        })
        .collect();
    let canceller = {
        let handle = Arc::clone(&handle);
        let targets: Vec<_> = ids.iter().copied().step_by(2).collect();
        std::thread::spawn(move || {
            for id in targets {
                handle.cancel(id);
            }
        })
    };
    canceller.join().unwrap();

    // Every job settles: Done, or Cancelled — never wedged, never Failed.
    for id in &ids {
        match handle.wait_timeout(*id, Duration::from_secs(60)) {
            Ok(_) | Err(WaitError::Cancelled) => {}
            other => panic!("job {id} did not settle cleanly: {other:?}"),
        }
    }
    let stats = handle.stats();
    assert_eq!(stats.completed + stats.cancelled, 48, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
    service.shutdown();
}

#[test]
fn mid_wave_cancellation_stops_a_running_query() {
    // A big corpus so waves take long enough to catch in flight.
    let ds = corpus(1_500_000);
    let service = Service::spawn(
        clean_system(ds.text()),
        ServiceConfig {
            max_batch: 1,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();

    // Attach our own token so cancellation can land mid-scan regardless of
    // how fast the wave claim won the race.
    let mut cancelled_while_running = false;
    for _ in 0..8 {
        let token = CancelToken::new();
        let request = QueryRequest::parse("NOT KERNEL")
            .unwrap()
            .with_cancel(token.clone());
        let id = handle.submit(request, Priority::Normal).unwrap();
        // Spin until the scheduler claims it, then cancel mid-wave.
        loop {
            match handle.poll(id) {
                Some(JobStatus::Running) => {
                    cancelled_while_running |= handle.cancel(id);
                    break;
                }
                Some(JobStatus::Pending) => std::hint::spin_loop(),
                _ => break, // settled before we caught it — try again
            }
        }
        match handle.wait_timeout(id, Duration::from_secs(60)) {
            Ok(_) | Err(WaitError::Cancelled) => {}
            other => panic!("cancelled job did not settle: {other:?}"),
        }
        if cancelled_while_running {
            break;
        }
    }
    assert!(
        cancelled_while_running,
        "never caught a wave mid-flight in 8 attempts"
    );

    // The service is unharmed: the next query runs to completion.
    let id = handle.submit_str("FATAL", Priority::Normal).unwrap();
    assert!(matches!(
        handle.wait_timeout(id, Duration::from_secs(60)),
        Ok(JobOutput::Query { .. })
    ));
    service.shutdown();
}

#[test]
fn zero_deadline_yields_a_well_formed_empty_result() {
    let ds = corpus(80_000);
    let service = Service::spawn(clean_system(ds.text()), ServiceConfig::default());
    let handle = service.handle();
    let request = QueryRequest::parse("error OR failed OR FATAL")
        .unwrap()
        .with_deadline(Duration::ZERO);
    let id = handle.submit(request, Priority::Normal).unwrap();
    let JobOutput::Query { outcome, .. } = handle.wait(id).unwrap() else {
        panic!("expected a query output");
    };
    assert_eq!(outcome.pages_scanned, 0, "nothing fits in a zero deadline");
    assert!(outcome.lines.is_empty());
    assert!(outcome.degraded.is_degraded());
    assert!(outcome.degraded.deadline_clipped > 0);
    service.shutdown();
}

#[test]
fn deadline_clipped_results_match_an_uncached_solo_replica() {
    let ds = corpus(400_000);
    let deadline = Duration::from_micros(200);

    // Replica A: solo run on a fresh system with the page cache disabled.
    let mut solo = MithriLog::new(SystemConfig {
        page_cache_bytes: 0,
        ..SystemConfig::default()
    });
    solo.ingest(ds.text()).unwrap();
    let request = QueryRequest::parse("error OR failed OR FATAL")
        .unwrap()
        .with_deadline(deadline);
    let solo_outcome = solo
        .query_shared(std::slice::from_ref(&request))
        .unwrap()
        .outcomes
        .remove(0);
    assert!(
        solo_outcome.degraded.deadline_clipped > 0,
        "deadline must bite for this test to mean anything: {:?}",
        solo_outcome.degraded
    );

    // Replica B: the same request through the service (cache enabled,
    // concurrent scheduler) — with a default deadline it must not override.
    let service = Service::spawn(
        clean_system(ds.text()),
        ServiceConfig {
            default_deadline: Some(Duration::from_secs(10)),
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let id = handle.submit(request, Priority::Normal).unwrap();
    let JobOutput::Query { outcome, .. } = handle.wait(id).unwrap() else {
        panic!("expected a query output");
    };
    service.shutdown();

    assert_eq!(outcome.lines, solo_outcome.lines);
    assert_eq!(outcome.pages_scanned, solo_outcome.pages_scanned);
    assert_eq!(outcome.ledger, solo_outcome.ledger);
    assert_eq!(outcome.degraded, solo_outcome.degraded);
    assert_eq!(outcome.modeled_time, solo_outcome.modeled_time);
}

#[test]
fn default_deadline_applies_only_to_requests_without_one() {
    let ds = corpus(400_000);
    let tight = Duration::from_micros(200);
    let service = Service::spawn(
        clean_system(ds.text()),
        ServiceConfig {
            default_deadline: Some(tight),
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();

    // No explicit deadline: the default clips the plan.
    let id = handle
        .submit_str("error OR failed OR FATAL", Priority::Normal)
        .unwrap();
    let JobOutput::Query { outcome, .. } = handle.wait(id).unwrap() else {
        panic!("expected a query output");
    };
    assert!(
        outcome.degraded.deadline_clipped > 0,
        "{:?}",
        outcome.degraded
    );

    // An explicit generous deadline wins over the tight default.
    let request = QueryRequest::parse("error OR failed OR FATAL")
        .unwrap()
        .with_deadline(Duration::from_secs(10));
    let id = handle.submit(request, Priority::Normal).unwrap();
    let JobOutput::Query { outcome, .. } = handle.wait(id).unwrap() else {
        panic!("expected a query output");
    };
    assert_eq!(
        outcome.degraded.deadline_clipped, 0,
        "{:?}",
        outcome.degraded
    );
    service.shutdown();
}

#[test]
fn a_panicking_wave_fails_only_its_own_jobs() {
    let ds = corpus(120_000);
    let pages = probe_data_pages(ds.text());
    let doomed = *pages.last().unwrap();
    let system = faulted_system(ds.text(), &[(doomed, FaultKind::ReadPanic)]);
    let service = Service::spawn(system, ServiceConfig::default());
    let handle = service.handle();

    // A full scan reads the doomed page: the wave panics, the job fails
    // with an internal error — and nothing else dies.
    let id = handle.submit_str("NOT KERNEL", Priority::Normal).unwrap();
    match handle.wait_timeout(id, Duration::from_secs(60)) {
        Err(WaitError::Failed(reason)) => {
            assert!(reason.contains("internal error"), "{reason}");
        }
        other => panic!("expected an internal-error failure, got {other:?}"),
    }
    let stats = handle.stats();
    assert_eq!(stats.waves_poisoned, 1, "{stats:?}");

    // The scheduler survived: a budget-clipped query that stays clear of
    // the doomed tail page completes, and STATS keeps answering.
    let mut request = QueryRequest::parse("error OR failed OR FATAL").unwrap();
    request.page_budget = Some(2);
    let id = handle.submit(request, Priority::Normal).unwrap();
    assert!(matches!(
        handle.wait_timeout(id, Duration::from_secs(60)),
        Ok(JobOutput::Query { .. })
    ));
    let stats = handle.stats();
    assert_eq!(stats.failed, 1, "{stats:?}");
    assert_eq!(stats.completed, 1, "{stats:?}");
    service.shutdown();
}

#[test]
fn quarantined_pages_cost_zero_retries_on_every_repeat() {
    let ds = corpus(120_000);
    let pages = probe_data_pages(ds.text());
    let doomed = pages[pages.len() / 2];
    // A page that never stops failing: retries exhaust, scrub quarantines.
    let system = faulted_system(
        ds.text(),
        &[(doomed, FaultKind::TransientRead { failures: u32::MAX })],
    );
    // Idle lane off: this test exercises the explicit SCRUB verb.
    let service = Service::spawn(system, ServiceConfig::default());
    let handle = service.handle();

    // SCRUB quarantines the page (charging its own retry budget once).
    let id = handle.submit_scrub().unwrap();
    let JobOutput::Scrub(report) = handle.wait_timeout(id, Duration::from_secs(60)).unwrap() else {
        panic!("expected a scrub report");
    };
    assert_eq!(report.quarantined, vec![doomed], "{report:?}");

    // Repeat queries: the quarantined page is skipped up front — zero
    // retries charged, every run identical.
    let mut outcomes = Vec::new();
    for _ in 0..3 {
        let id = handle
            .submit_str("error OR failed OR FATAL", Priority::Normal)
            .unwrap();
        let JobOutput::Query { outcome, .. } =
            handle.wait_timeout(id, Duration::from_secs(60)).unwrap()
        else {
            panic!("expected a query output");
        };
        assert_eq!(outcome.ledger.retries, 0, "{:?}", outcome.ledger);
        assert_eq!(outcome.degraded.retries, 0, "{:?}", outcome.degraded);
        assert!(
            outcome.degraded.skipped_pages.contains(&doomed),
            "{:?}",
            outcome.degraded
        );
        outcomes.push(outcome);
    }
    assert_eq!(outcomes[0].lines, outcomes[1].lines);
    assert_eq!(outcomes[0].degraded, outcomes[2].degraded);
    service.shutdown();
}

#[test]
fn online_scrub_lane_quarantines_during_idle_time() {
    let ds = corpus(120_000);
    let pages = probe_data_pages(ds.text());
    let doomed = pages[1];
    let system = faulted_system(
        ds.text(),
        &[(doomed, FaultKind::TransientRead { failures: u32::MAX })],
    );
    let total_pages = system.device().page_count();
    let service = Service::spawn(
        system,
        ServiceConfig {
            scrub_batch: 16,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();

    // The scheduler is idle, so the lane sweeps the device on its own;
    // wait (bounded) for one full pass.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let stats = loop {
        let stats = handle.stats();
        if stats.pages_scrubbed >= total_pages {
            break stats;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "online scrub never completed a pass: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(stats.scrub_slices >= total_pages.div_ceil(16), "{stats:?}");
    assert_eq!(stats.pages_quarantined, 1, "{stats:?}");

    // Foreground queries now skip the quarantined page deterministically.
    let id = handle
        .submit_str("error OR failed OR FATAL", Priority::Normal)
        .unwrap();
    let JobOutput::Query { outcome, .. } = handle.wait(id).unwrap() else {
        panic!("expected a query output");
    };
    assert!(outcome.degraded.skipped_pages.contains(&doomed));
    assert_eq!(outcome.ledger.retries, 0);
    service.shutdown();
}
