//! Cross-crate integration tests: the full MithriLog system against the
//! reference evaluator and the baseline engines, over synthetic datasets.

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_baseline::{IndexedEngine, LogTable};
use mithrilog_ftree::{FtreeConfig, TemplateLibrary};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_query::{parse, Query};

/// FT-tree settings matched to the synthetic corpora (wide fan-out for the
/// month/day tokens, support floor above variable-value noise).
fn ftree_config() -> FtreeConfig {
    FtreeConfig {
        min_support: 8,
        max_children: 24,
        max_depth: 12,
        min_leaf_fraction: 0.0002,
    }
}

fn small_dataset(profile: DatasetProfile) -> Vec<u8> {
    generate(&DatasetSpec {
        profile,
        target_bytes: 300_000,
        seed: 1234,
    })
    .into_text()
}

fn reference_count(text: &[u8], q: &Query) -> u64 {
    std::str::from_utf8(text)
        .unwrap()
        .lines()
        .filter(|l| q.matches_line(l))
        .count() as u64
}

#[test]
fn system_matches_reference_on_every_profile() {
    for profile in DatasetProfile::all() {
        let text = small_dataset(profile);
        let mut system = MithriLog::new(SystemConfig::default());
        system.ingest(&text).unwrap();
        for qs in [
            "session AND opened",
            "Failed OR error=0x04",
            "kernel: AND NOT session",
            "NOT - ", // negative-only on the universal dash token
        ] {
            let q = parse(qs).unwrap();
            let got = system.query(&q).unwrap().match_count();
            let want = reference_count(&text, &q);
            assert_eq!(got, want, "{profile:?} query {qs:?}");
        }
    }
}

#[test]
fn system_and_indexed_engine_agree_on_template_queries() {
    let text = small_dataset(DatasetProfile::Liberty2);
    let library = TemplateLibrary::extract(&text, &ftree_config());
    assert!(library.len() >= 8, "got {} templates", library.len());

    let table = LogTable::from_text(&text);
    let indexed = IndexedEngine::build(&table);
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(&text).unwrap();

    for t in library.iter().take(20) {
        let q = t.to_query();
        let a = system.query(&q).unwrap().match_count();
        let b = indexed.count_matches(&table, &q);
        assert_eq!(a, b, "template #{} {:?}", t.id(), t.tokens());
        assert_eq!(a, reference_count(&text, &q), "reference for #{}", t.id());
    }
}

#[test]
fn multi_template_join_equals_union_of_singles() {
    let text = small_dataset(DatasetProfile::Spirit2);
    let library = TemplateLibrary::extract(&text, &ftree_config());
    assert!(library.len() >= 4, "got {} templates", library.len());
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(&text).unwrap();

    let ids = [0usize, 1, 2, 3];
    let joined = library.joined_query(&ids);
    let joined_lines: std::collections::HashSet<String> =
        system.query(&joined).unwrap().lines.into_iter().collect();

    let mut union: std::collections::HashSet<String> = std::collections::HashSet::new();
    for &i in &ids {
        union.extend(
            system
                .query(&library.templates()[i].to_query())
                .unwrap()
                .lines,
        );
    }
    assert_eq!(joined_lines, union);
}

#[test]
fn ingest_in_batches_equals_ingest_at_once() {
    let text = small_dataset(DatasetProfile::Bgl2);
    let mut whole = MithriLog::new(SystemConfig::default());
    whole.ingest(&text).unwrap();

    let mut batched = MithriLog::new(SystemConfig::default());
    // Split at line boundaries into three batches.
    let lines: Vec<&[u8]> = text.split_inclusive(|&b| b == b'\n').collect();
    let third = lines.len() / 3;
    for chunk in lines.chunks(third.max(1)) {
        let batch: Vec<u8> = chunk.concat();
        batched.ingest(&batch).unwrap();
    }
    assert_eq!(whole.lines(), batched.lines());

    for qs in ["FATAL", "ciod: AND NOT KERNEL", "NOT RAS"] {
        let q = parse(qs).unwrap();
        assert_eq!(
            whole.query(&q).unwrap().match_count(),
            batched.query(&q).unwrap().match_count(),
            "query {qs:?}"
        );
    }
}

#[test]
fn full_scan_and_indexed_modes_return_identical_results() {
    let text = small_dataset(DatasetProfile::Thunderbird);
    let mut indexed = MithriLog::new(SystemConfig::default());
    indexed.ingest(&text).unwrap();
    let mut fullscan = MithriLog::new(SystemConfig::full_scan_only());
    fullscan.ingest(&text).unwrap();

    for qs in [
        "ib_sm.x[24583]:",
        "session AND root AND NOT closed",
        "DHCPDISCOVER OR DHCPOFFER",
    ] {
        let q = parse(qs).unwrap();
        let a = indexed.query(&q).unwrap();
        let b = fullscan.query(&q).unwrap();
        assert_eq!(a.lines, b.lines, "query {qs:?}");
        assert!(a.pages_scanned <= b.pages_scanned);
    }
}

#[test]
fn modeled_times_reward_index_pruning() {
    let text = small_dataset(DatasetProfile::Liberty2);
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(&text).unwrap();

    // A token that appears in few pages: index prunes, time is small.
    let rare = system.query_str("logrotate:").unwrap();
    // Negative-only: full scan.
    let full = system.query_str("NOT session").unwrap();
    assert!(rare.used_index);
    assert!(!full.used_index);
    assert!(rare.pages_scanned < full.pages_scanned);
    assert!(rare.modeled_time < full.modeled_time);
}

#[test]
fn compression_ratio_feeds_throughput_model() {
    let text = small_dataset(DatasetProfile::Thunderbird);
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(&text).unwrap();
    assert!(system.compression_ratio() > 1.5);
    let t = system.modeled_throughput();
    assert!(t.total_gbps > 4.0, "modeled {:.2} GB/s", t.total_gbps);
    assert!(t.total_gbps <= 12.8 + 1e-9);
}
